//! The off-heap object store: native allocator, string-keyed type table,
//! refcount GC, per-operation transactions.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use espresso_nvm::NvmDevice;
use espresso_object::{FieldKind, FieldType, Schema};
use parking_lot::Mutex;

use crate::timers::{Phase, PhaseBreakdown};

const MAGIC: u64 = 0x5043_4a53_544f_5245; // "PCJSTORE"

mod meta {
    pub const MAGIC: usize = 0;
    pub const ALLOC_TOP: usize = 8;
    pub const FREELIST: usize = 16;
    pub const TYPE_TOP: usize = 24;
    pub const ROOT: usize = 40;
    /// NVML-style transaction stage word (its own cache line so the
    /// per-transaction flushes are honest).
    pub const TX_STAGE: usize = 128;
    pub const SIZE: usize = 256;
}

/// Undo-log entries are self-validating, NVML-ulog style: a 16-byte
/// `(addr, old)` record is live iff its `addr` word is non-zero. The log
/// area starts line-aligned and records are 16 bytes, so each record
/// persist is a single atomic line flush; commit invalidates the
/// transaction by zeroing the used records' `addr` words (one flush per
/// four records, typically one), and recovery re-zeroes the whole log so
/// every transaction starts from an all-zero persisted log. No separately
/// persisted entry count — that used to double the metadata flushes of
/// every logged store inside a transaction.
const LOG_ENTRIES: usize = 1024;
const LOG_OFF: usize = meta::SIZE;
const LOG_BYTES: usize = LOG_ENTRIES * 16;
// Record atomicity requires that 16-byte records never straddle a cache
// line from the line-aligned log base.
const _: () = assert!(LOG_OFF.is_multiple_of(espresso_nvm::CACHE_LINE));
const _: () = assert!(espresso_nvm::CACHE_LINE.is_multiple_of(16));
const TYPE_OFF: usize = LOG_OFF + LOG_BYTES;
const TYPE_BYTES: usize = 32 << 10;
const DATA_OFF: usize = TYPE_OFF + TYPE_BYTES;

/// Object header: payload size (words), refcount, type-record offset.
const HEADER_WORDS: usize = 3;

/// Errors from the PCJ baseline.
#[derive(Debug)]
pub enum PcjError {
    /// The data area is exhausted.
    OutOfMemory,
    /// The type table is exhausted.
    TypeTableFull,
    /// A transaction exceeded the undo log.
    LogOverflow,
    /// The device does not hold a formatted store.
    NotAStore,
    /// A declared schema cannot be represented in PCJ's object model, or
    /// a named field access violated it.
    Schema {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for PcjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcjError::OutOfMemory => write!(f, "pcj store out of memory"),
            PcjError::TypeTableFull => write!(f, "pcj type table full"),
            PcjError::LogOverflow => write!(f, "pcj undo log overflow"),
            PcjError::NotAStore => write!(f, "device does not hold a pcj store"),
            PcjError::Schema { detail } => write!(f, "pcj schema violation: {detail}"),
        }
    }
}

impl std::error::Error for PcjError {}

/// Handle to an off-heap object (its header offset). Zero is null.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PcjRef(pub(crate) u64);

impl PcjRef {
    /// The null handle.
    pub const NULL: PcjRef = PcjRef(0);

    /// Whether this is the null handle.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Raw offset (for persisting into payload slots).
    pub fn to_raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from a payload slot.
    pub fn from_raw(raw: u64) -> PcjRef {
        PcjRef(raw)
    }
}

/// The PCJ-style store. See the [crate docs](crate) for the cost model.
pub struct PcjStore {
    dev: NvmDevice,
    lock: Arc<Mutex<()>>,
    timers: PhaseBreakdown,
    log_entries: usize,
    /// Open-transaction depth: nested begins (an op inside a
    /// [`transact`](Self::transact) scope) flatten into the outer one.
    txn_depth: u32,
}

impl fmt::Debug for PcjStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PcjStore")
            .field("device_size", &self.dev.size())
            .finish()
    }
}

impl PcjStore {
    /// Formats a fresh store on `dev`.
    ///
    /// # Errors
    ///
    /// [`PcjError::OutOfMemory`] if the device is smaller than the fixed
    /// areas.
    pub fn format(dev: NvmDevice) -> crate::Result<PcjStore> {
        if dev.size() <= DATA_OFF + 1024 {
            return Err(PcjError::OutOfMemory);
        }
        dev.write_u64(meta::MAGIC, MAGIC);
        dev.write_u64(meta::ALLOC_TOP, DATA_OFF as u64 + 8); // offset 0 stays null
        dev.write_u64(meta::FREELIST, 0);
        dev.write_u64(meta::TYPE_TOP, TYPE_OFF as u64);
        dev.write_u64(meta::ROOT, 0);
        dev.write_u64(meta::TX_STAGE, 0);
        dev.persist(0, meta::SIZE);
        // Establish the all-zero persisted log the record-validity scan
        // relies on (the device may be reused).
        dev.fill(LOG_OFF, LOG_BYTES, 0);
        dev.persist(LOG_OFF, LOG_BYTES);
        Ok(PcjStore {
            dev,
            lock: Arc::new(Mutex::new(())),
            timers: PhaseBreakdown::default(),
            log_entries: 0,
            txn_depth: 0,
        })
    }

    /// Attaches to an existing store, rolling back a torn transaction.
    ///
    /// # Errors
    ///
    /// [`PcjError::NotAStore`] on a foreign image.
    pub fn attach(dev: NvmDevice) -> crate::Result<PcjStore> {
        if dev.size() < meta::SIZE || dev.read_u64(meta::MAGIC) != MAGIC {
            return Err(PcjError::NotAStore);
        }
        if dev.read_u64(meta::TX_STAGE) != 0 {
            // A transaction was torn: undo its valid record prefix in
            // reverse. Every record whose data write may have reached the
            // persistence domain is fully durable here (the single-line
            // record is persisted before its data write).
            let mut entries = Vec::new();
            for i in 0..LOG_ENTRIES {
                let addr = dev.read_u64(LOG_OFF + i * 16) as usize;
                if addr == 0 {
                    break;
                }
                entries.push((addr, dev.read_u64(LOG_OFF + i * 16 + 8)));
            }
            for &(addr, old) in entries.iter().rev() {
                dev.write_u64(addr, old);
                dev.persist(addr, 8);
            }
            // Re-zero the whole log: a crash inside commit's invalidation
            // can leave live-looking records beyond a zeroed prefix, and
            // the next transaction's validity scan must not find them.
            dev.fill(LOG_OFF, LOG_BYTES, 0);
            dev.persist(LOG_OFF, LOG_BYTES);
            dev.write_u64(meta::TX_STAGE, 0);
            dev.persist(meta::TX_STAGE, 8);
        }
        Ok(PcjStore {
            dev,
            lock: Arc::new(Mutex::new(())),
            timers: PhaseBreakdown::default(),
            log_entries: 0,
            txn_depth: 0,
        })
    }

    /// The backing device.
    pub fn device(&self) -> &NvmDevice {
        &self.dev
    }

    /// Accumulated phase timers (Figure 6).
    pub fn timers(&self) -> PhaseBreakdown {
        self.timers
    }

    /// Resets the phase timers.
    pub fn reset_timers(&mut self) {
        self.timers = PhaseBreakdown::default();
    }

    fn timed<T>(&mut self, phase: Phase, f: impl FnOnce(&mut PcjStore) -> T) -> T {
        let t0 = Instant::now();
        let out = f(self);
        self.timers.add(phase, t0.elapsed());
        out
    }

    // ---- transactions (NVML-style undo log, per-entry flushes) ----

    pub(crate) fn txn_begin(&mut self) {
        if self.txn_depth > 0 {
            self.txn_depth += 1;
            return;
        }
        self.timed(Phase::Transaction, |s| {
            // The synchronization primitive PCJ pays for on every op, plus
            // NVML's persisted transaction-stage update (tx_begin writes
            // and flushes the stage word before any work happens).
            drop(s.lock.clone().lock());
            s.dev.write_u64(meta::TX_STAGE, 1);
            s.dev.persist(meta::TX_STAGE, 8);
            s.log_entries = 0;
            s.txn_depth = 1;
        });
    }

    pub(crate) fn txn_commit(&mut self) {
        if self.txn_depth > 1 {
            self.txn_depth -= 1;
            return;
        }
        self.timed(Phase::Transaction, |s| {
            // NVML tx_end: invalidate the used records (their addr words
            // share lines four to one, so this is usually one flush — not
            // a per-entry count rewrite), then stage back to NONE.
            if s.log_entries > 0 {
                for i in 0..s.log_entries {
                    s.dev.write_u64(LOG_OFF + i * 16, 0);
                }
                s.dev.persist(LOG_OFF, s.log_entries * 16);
            }
            s.dev.write_u64(meta::TX_STAGE, 0);
            s.dev.persist(meta::TX_STAGE, 8);
            s.log_entries = 0;
            s.txn_depth = 0;
        });
    }

    fn log_word(&mut self, addr: usize) -> crate::Result<()> {
        if self.log_entries >= LOG_ENTRIES {
            return Err(PcjError::LogOverflow);
        }
        let t0 = Instant::now();
        let old = self.dev.read_u64(addr);
        let i = self.log_entries;
        self.dev.write_u64(LOG_OFF + i * 16, addr as u64);
        self.dev.write_u64(LOG_OFF + i * 16 + 8, old);
        // One single-line persist makes the record live atomically (the
        // log is line-aligned and records are 16 bytes); everything beyond
        // the prefix is already durably zero, so no count flush is needed.
        self.dev.persist(LOG_OFF + i * 16, 16);
        self.log_entries = i + 1;
        self.timers.add(Phase::Transaction, t0.elapsed());
        Ok(())
    }

    fn logged_write(&mut self, addr: usize, value: u64) -> crate::Result<()> {
        self.log_word(addr)?;
        self.dev.write_u64(addr, value);
        self.dev.persist(addr, 8);
        Ok(())
    }

    /// Undoes records `start..log_entries` in reverse and invalidates
    /// them (the abort half of the NVML idiom, scoped so a nested
    /// [`transact`](Self::transact) rolls back only its own stores;
    /// recovery does the full-prefix equivalent from the persisted log).
    fn txn_rollback_from(&mut self, start: usize) {
        if self.log_entries <= start {
            return;
        }
        for i in (start..self.log_entries).rev() {
            let addr = self.dev.read_u64(LOG_OFF + i * 16) as usize;
            let old = self.dev.read_u64(LOG_OFF + i * 16 + 8);
            self.dev.write_u64(addr, old);
            self.dev.persist(addr, 8);
        }
        // Zero the rolled-back records so neither an outer commit's sweep
        // nor crash recovery ever treats them as live again.
        for i in start..self.log_entries {
            self.dev.write_u64(LOG_OFF + i * 16, 0);
        }
        self.dev
            .persist(LOG_OFF + start * 16, (self.log_entries - start) * 16);
        self.log_entries = start;
    }

    /// Runs `f` as one scoped NVML-style transaction — the same typed
    /// entry-point shape as the PJH session API's `txn`: one stage-word
    /// persist per scope instead of per operation, commit on `Ok`,
    /// rollback + commit-stage-reset on `Err` *and* on panic (the panic
    /// is re-raised after the rollback). Batching several logged stores
    /// under one scope is how PCJ applications amortize the transaction
    /// overhead the paper measures per-op.
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error after rolling back its logged stores.
    pub fn transact<T>(
        &mut self,
        f: impl FnOnce(&mut PcjStore) -> crate::Result<T>,
    ) -> crate::Result<T> {
        self.txn_begin();
        // This scope owns only the records appended from here on: a
        // nested transact that fails must not undo its enclosing scope's
        // stores (the outer scope decides its own fate).
        let scope_start = self.log_entries;
        let scope_depth = self.txn_depth;
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(self)));
        match out {
            Ok(Ok(v)) => {
                self.txn_commit();
                Ok(v)
            }
            Ok(Err(e)) => {
                self.txn_rollback_from(scope_start);
                self.txn_commit();
                Err(e)
            }
            Err(payload) => {
                // A panicking closure must not leave the stage word set
                // and the depth stuck — the panic may even have unwound
                // out of a nested op between its begin and commit, so
                // force the depth back to this scope before closing it;
                // then let the panic continue (an enclosing transact will
                // roll back its own slice the same way).
                self.txn_depth = scope_depth;
                self.txn_rollback_from(scope_start);
                self.txn_commit();
                std::panic::resume_unwind(payload);
            }
        }
    }

    // ---- type table (the "metadata" cost of Figure 6) ----

    fn type_lookup_or_insert(&mut self, name: &str, slots_are_refs: bool) -> crate::Result<u64> {
        self.timed(Phase::Metadata, |s| {
            let top = s.dev.read_u64(meta::TYPE_TOP) as usize;
            let mut pos = TYPE_OFF;
            while pos < top {
                let len = s.dev.read_u64(pos) as usize;
                let mut buf = vec![0u8; len];
                s.dev.read_bytes(pos + 16, &mut buf);
                if buf == name.as_bytes() {
                    return Ok(pos as u64);
                }
                pos += 16 + len.next_multiple_of(8);
            }
            let rec_len = 16 + name.len().next_multiple_of(8);
            if pos + rec_len > TYPE_OFF + TYPE_BYTES {
                return Err(PcjError::TypeTableFull);
            }
            s.dev.write_u64(pos, name.len() as u64);
            s.dev.write_u64(pos + 8, slots_are_refs as u64);
            s.dev.write_bytes(pos + 16, name.as_bytes());
            s.dev.persist(pos, rec_len);
            s.dev.write_u64(meta::TYPE_TOP, (pos + rec_len) as u64);
            s.dev.persist(meta::TYPE_TOP, 8);
            Ok(pos as u64)
        })
    }

    /// Reads back an object's type name.
    pub fn type_name(&self, obj: PcjRef) -> String {
        let ty = self.dev.read_u64(obj.0 as usize + 16) as usize;
        let len = self.dev.read_u64(ty) as usize;
        let mut buf = vec![0u8; len];
        self.dev.read_bytes(ty + 16, &mut buf);
        String::from_utf8_lossy(&buf).into_owned()
    }

    fn type_slots_are_refs(&self, obj: PcjRef) -> bool {
        let ty = self.dev.read_u64(obj.0 as usize + 16) as usize;
        self.dev.read_u64(ty + 8) != 0
    }

    // ---- allocation (first-fit free list, then bump) ----

    fn alloc_block(&mut self, payload_words: usize) -> crate::Result<usize> {
        self.timed(Phase::Allocation, |s| {
            let need = HEADER_WORDS + payload_words;
            // Walk the free list first-fit (exact-or-larger, no splitting).
            let mut prev = 0usize;
            let mut cur = s.dev.read_u64(meta::FREELIST) as usize;
            while cur != 0 {
                let size = s.dev.read_u64(cur) as usize;
                if size >= payload_words && size <= payload_words * 2 + 8 {
                    let next = s.dev.read_u64(cur + 8);
                    if prev == 0 {
                        s.dev.write_u64(meta::FREELIST, next);
                        s.dev.persist(meta::FREELIST, 8);
                    } else {
                        s.dev.write_u64(prev + 8, next);
                        s.dev.persist(prev + 8, 8);
                    }
                    s.dev.write_u64(cur, size as u64);
                    s.dev.persist(cur, 8); // the bump path persists its size word too
                    return Ok(cur);
                }
                prev = cur;
                cur = s.dev.read_u64(cur + 8) as usize;
            }
            let top = s.dev.read_u64(meta::ALLOC_TOP) as usize;
            if top + need * 8 > s.dev.size() {
                return Err(PcjError::OutOfMemory);
            }
            s.dev.write_u64(meta::ALLOC_TOP, (top + need * 8) as u64);
            s.dev.persist(meta::ALLOC_TOP, 8);
            s.dev.write_u64(top, payload_words as u64);
            s.dev.persist(top, 8);
            Ok(top)
        })
    }

    // ---- refcount GC (the "GC" cost of Figure 6) ----

    fn write_rc(&mut self, obj: usize, rc: u64) -> crate::Result<()> {
        self.logged_write(obj + 8, rc)
    }

    pub(crate) fn inc_rc(&mut self, obj: PcjRef) -> crate::Result<()> {
        if obj.is_null() {
            return Ok(());
        }
        self.timed(Phase::Gc, |s| {
            let rc = s.dev.read_u64(obj.0 as usize + 8);
            s.write_rc(obj.0 as usize, rc + 1)
        })
    }

    pub(crate) fn dec_rc(&mut self, obj: PcjRef) -> crate::Result<()> {
        if obj.is_null() {
            return Ok(());
        }
        self.timed(Phase::Gc, |s| s.dec_rc_inner(obj.0 as usize))
    }

    fn dec_rc_inner(&mut self, obj: usize) -> crate::Result<()> {
        let mut stack = vec![obj];
        while let Some(o) = stack.pop() {
            let rc = self.dev.read_u64(o + 8);
            let rc = rc.saturating_sub(1);
            self.write_rc(o, rc)?;
            if rc == 0 {
                // Drop children, then thread the block onto the free list.
                if self.type_slots_are_refs(PcjRef(o as u64)) {
                    let words = self.dev.read_u64(o) as usize;
                    for i in 0..words {
                        let child = self.dev.read_u64(o + (HEADER_WORDS + i) * 8);
                        if child != 0 {
                            stack.push(child as usize);
                        }
                    }
                }
                let head = self.dev.read_u64(meta::FREELIST);
                self.logged_write(o + 8, head)?; // next-free pointer reuses the rc slot
                self.logged_write(meta::FREELIST, o as u64)?;
            }
        }
        Ok(())
    }

    /// Current refcount (tests).
    pub fn refcount(&self, obj: PcjRef) -> u64 {
        self.dev.read_u64(obj.0 as usize + 8)
    }

    // ---- object API ----

    /// Creates an off-heap object: allocation + type memorization +
    /// refcount initialization + zeroed payload, all under a transaction.
    ///
    /// # Errors
    ///
    /// Space errors from any area.
    pub fn create(
        &mut self,
        type_name: &str,
        payload_words: usize,
        slots_are_refs: bool,
    ) -> crate::Result<PcjRef> {
        self.txn_begin();
        let result = (|| {
            let block = self.alloc_block(payload_words)?;
            let ty = self.type_lookup_or_insert(type_name, slots_are_refs)?;
            self.timed(Phase::Metadata, |s| s.logged_write(block + 16, ty))?;
            self.timed(Phase::Gc, |s| s.write_rc(block, 1))?;
            self.timed(Phase::Data, |s| {
                s.dev.fill(block + HEADER_WORDS * 8, payload_words * 8, 0);
                s.dev.persist(block + HEADER_WORDS * 8, payload_words * 8);
                Ok(())
            })?;
            Ok(PcjRef(block as u64))
        })();
        self.txn_commit();
        result
    }

    /// Creates an off-heap object from a declared [`Schema`] — the PCJ
    /// face of the workspace's typed object API. The schema's class name
    /// becomes the memorized type, and its field count sizes the payload.
    ///
    /// PCJ's object model is *homogeneous*: one per-type flag says
    /// whether every slot is a reference (traced by the refcount GC) or
    /// every slot is a primitive. A schema mixing the two — or using
    /// field types PCJ has no representation for, like `str` — is
    /// rejected with a real error; that representational gap is part of
    /// what the paper's PJH-vs-PCJ comparison measures.
    ///
    /// # Errors
    ///
    /// [`PcjError::Schema`] for unrepresentable schemas; space errors
    /// from any area.
    pub fn create_from_schema(&mut self, schema: &Schema) -> crate::Result<PcjRef> {
        let refs = schema
            .fields()
            .iter()
            .filter(|f| f.ty.kind() == FieldKind::Reference)
            .count();
        if refs != 0 && refs != schema.len() {
            return Err(PcjError::Schema {
                detail: format!(
                    "class {} mixes {} reference and {} primitive fields; PCJ slots are \
                     homogeneous per type",
                    schema.name(),
                    refs,
                    schema.len() - refs
                ),
            });
        }
        if let Some(f) = schema.fields().iter().find(|f| {
            matches!(
                f.ty,
                FieldType::Str | FieldType::Array | FieldType::RefArray { .. }
            )
        }) {
            return Err(PcjError::Schema {
                detail: format!(
                    "field {:?} of class {} is declared {}, which PCJ objects cannot hold",
                    f.name,
                    schema.name(),
                    f.ty
                ),
            });
        }
        self.create(schema.name(), schema.len(), refs != 0)
    }

    /// Resolves `name` against `schema` and reads that payload slot.
    ///
    /// # Errors
    ///
    /// [`PcjError::Schema`] for unknown field names.
    pub fn get_field(&mut self, schema: &Schema, obj: PcjRef, name: &str) -> crate::Result<u64> {
        let (index, _) = self.resolve_field(schema, name)?;
        Ok(self.get_word(obj, index))
    }

    /// Resolves `name` against `schema` and writes that payload slot
    /// (logged, like every PCJ store).
    ///
    /// # Errors
    ///
    /// [`PcjError::Schema`] for unknown field names; log errors.
    pub fn set_field(
        &mut self,
        schema: &Schema,
        obj: PcjRef,
        name: &str,
        value: u64,
    ) -> crate::Result<()> {
        let (index, ty) = self.resolve_field(schema, name)?;
        if ty.kind() == FieldKind::Reference {
            self.set_ref(obj, index, PcjRef::from_raw(value))
        } else {
            self.set_word(obj, index, value)
        }
    }

    fn resolve_field<'s>(
        &self,
        schema: &'s Schema,
        name: &str,
    ) -> crate::Result<(usize, &'s FieldType)> {
        schema.field(name).ok_or_else(|| PcjError::Schema {
            detail: format!("class {} has no field named {name:?}", schema.name()),
        })
    }

    /// Payload word count.
    pub fn payload_words(&self, obj: PcjRef) -> usize {
        self.dev.read_u64(obj.0 as usize) as usize
    }

    /// Reads payload word `i` (under the transaction lock, like PCJ's
    /// accessor methods).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get_word(&mut self, obj: PcjRef, i: usize) -> u64 {
        let words = self.payload_words(obj);
        assert!(i < words, "payload index {i} out of range ({words})");
        self.txn_begin();
        let v = self.timed(Phase::Data, |s| {
            s.dev.read_u64(obj.0 as usize + (HEADER_WORDS + i) * 8)
        });
        self.txn_commit();
        v
    }

    /// Transactionally writes payload word `i` (primitive slot).
    ///
    /// # Errors
    ///
    /// Log overflow.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set_word(&mut self, obj: PcjRef, i: usize, value: u64) -> crate::Result<()> {
        let words = self.payload_words(obj);
        assert!(i < words, "payload index {i} out of range ({words})");
        self.txn_begin();
        let r = self.timed(Phase::Data, |s| {
            s.logged_write(obj.0 as usize + (HEADER_WORDS + i) * 8, value)
        });
        self.txn_commit();
        r
    }

    /// Transactionally stores a reference into payload slot `i`,
    /// maintaining refcounts on both the old and new targets.
    ///
    /// # Errors
    ///
    /// Log overflow.
    pub fn set_ref(&mut self, obj: PcjRef, i: usize, value: PcjRef) -> crate::Result<()> {
        let words = self.payload_words(obj);
        assert!(i < words, "payload index {i} out of range ({words})");
        self.txn_begin();
        let result = (|| {
            let slot = obj.0 as usize + (HEADER_WORDS + i) * 8;
            let old = PcjRef(self.dev.read_u64(slot));
            self.inc_rc(value)?;
            self.timed(Phase::Data, |s| s.logged_write(slot, value.to_raw()))?;
            self.dec_rc(old)?;
            Ok(())
        })();
        self.txn_commit();
        result
    }

    /// Reads payload slot `i` as a reference.
    pub fn get_ref(&mut self, obj: PcjRef, i: usize) -> PcjRef {
        PcjRef::from_raw(self.get_word(obj, i))
    }

    /// Publishes the store's root object (PCJ's ObjectDirectory, reduced
    /// to a single slot).
    ///
    /// # Errors
    ///
    /// Log overflow.
    pub fn set_root(&mut self, obj: PcjRef) -> crate::Result<()> {
        self.txn_begin();
        let result = (|| {
            let old = PcjRef(self.dev.read_u64(meta::ROOT));
            self.inc_rc(obj)?;
            self.logged_write(meta::ROOT, obj.to_raw())?;
            self.dec_rc(old)?;
            Ok(())
        })();
        self.txn_commit();
        result
    }

    /// Fetches the root object.
    pub fn root(&self) -> PcjRef {
        PcjRef(self.dev.read_u64(meta::ROOT))
    }

    /// Bytes currently allocated past the data-area base.
    pub fn allocated_bytes(&self) -> usize {
        self.dev.read_u64(meta::ALLOC_TOP) as usize - DATA_OFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_nvm::NvmConfig;

    fn store() -> (NvmDevice, PcjStore) {
        let dev = NvmDevice::new(NvmConfig::with_size(4 << 20));
        let s = PcjStore::format(dev.clone()).unwrap();
        (dev, s)
    }

    #[test]
    fn create_and_word_roundtrip() {
        let (_dev, mut s) = store();
        let o = s.create("PersistentLong", 1, false).unwrap();
        s.set_word(o, 0, 42).unwrap();
        assert_eq!(s.get_word(o, 0), 42);
        assert_eq!(s.type_name(o), "PersistentLong");
        assert_eq!(s.refcount(o), 1);
    }

    #[test]
    fn schema_create_and_named_fields() {
        let (_dev, mut s) = store();
        let point = Schema::builder("Point")
            .u64_field("x")
            .u64_field("y")
            .build();
        let o = s.create_from_schema(&point).unwrap();
        assert_eq!(s.type_name(o), "Point");
        assert_eq!(s.payload_words(o), 2);
        s.set_field(&point, o, "y", 9).unwrap();
        assert_eq!(s.get_field(&point, o, "y").unwrap(), 9);
        assert_eq!(s.get_field(&point, o, "x").unwrap(), 0);
        assert!(matches!(
            s.get_field(&point, o, "z"),
            Err(PcjError::Schema { .. })
        ));
        // All-reference schemas map to traced slots.
        let pair = Schema::builder("Pair")
            .ref_named("left", "Point")
            .ref_named("right", "Point")
            .build();
        let p = s.create_from_schema(&pair).unwrap();
        s.set_field(&pair, p, "left", o.to_raw()).unwrap();
        assert_eq!(s.refcount(o), 2, "named ref store bumped the refcount");
    }

    #[test]
    fn unrepresentable_schemas_are_rejected() {
        let (_dev, mut s) = store();
        let mixed = Schema::builder("Mixed")
            .u64_field("n")
            .ref_named("r", "Mixed")
            .build();
        assert!(matches!(
            s.create_from_schema(&mixed),
            Err(PcjError::Schema { .. })
        ));
        let stringy = Schema::builder("S").str_field("s").build();
        assert!(matches!(
            s.create_from_schema(&stringy),
            Err(PcjError::Schema { .. })
        ));
        let ref_array = Schema::builder("R").ref_array_named("a", "Y").build();
        assert!(matches!(
            s.create_from_schema(&ref_array),
            Err(PcjError::Schema { .. })
        ));
    }

    #[test]
    fn type_table_is_shared_across_objects() {
        let (dev, mut s) = store();
        let a = s.create("T", 1, false).unwrap();
        let top_after_one = dev.read_u64(meta::TYPE_TOP);
        let b = s.create("T", 1, false).unwrap();
        assert_eq!(
            dev.read_u64(meta::TYPE_TOP),
            top_after_one,
            "no duplicate record"
        );
        assert_eq!(s.type_name(a), s.type_name(b));
    }

    #[test]
    fn refcount_frees_at_zero_and_reuses_block() {
        let (_dev, mut s) = store();
        let container = s.create("Box", 1, true).unwrap();
        let child = s.create("PersistentLong", 1, false).unwrap();
        s.set_ref(container, 0, child).unwrap();
        assert_eq!(s.refcount(child), 2);
        s.set_ref(container, 0, PcjRef::NULL).unwrap();
        assert_eq!(s.refcount(child), 1);
        // Dropping the creation reference frees the block...
        s.dec_rc(child).unwrap();
        let bytes = s.allocated_bytes();
        // ...which the next same-size allocation reuses.
        let again = s.create("PersistentLong", 1, false).unwrap();
        assert_eq!(s.allocated_bytes(), bytes, "free-list reuse");
        assert_eq!(again, child);
    }

    #[test]
    fn recursive_free_cascades() {
        let (_dev, mut s) = store();
        let parent = s.create("Pair", 2, true).unwrap();
        let a = s.create("PersistentLong", 1, false).unwrap();
        let b = s.create("PersistentLong", 1, false).unwrap();
        s.set_ref(parent, 0, a).unwrap();
        s.set_ref(parent, 1, b).unwrap();
        // Drop creation refs: children now owned by parent only.
        s.dec_rc(a).unwrap();
        s.dec_rc(b).unwrap();
        assert_eq!(s.refcount(a), 1);
        // Freeing the parent cascades: both child blocks land on the free
        // list (their rc slots become next-free pointers), so the next two
        // same-size allocations reuse them.
        s.dec_rc(parent).unwrap();
        let x = s.create("PersistentLong", 1, false).unwrap();
        let y = s.create("PersistentLong", 1, false).unwrap();
        let mut reused = [x, y];
        let mut freed = [a, b];
        reused.sort_by_key(|r| r.to_raw());
        freed.sort_by_key(|r| r.to_raw());
        assert_eq!(reused, freed);
    }

    #[test]
    fn torn_transaction_rolls_back_on_attach() {
        let (dev, mut s) = store();
        let o = s.create("T", 1, false).unwrap();
        s.set_root(o).unwrap();
        s.set_word(o, 0, 5).unwrap();
        // Tear the next write: let the stage and log-entry flushes land but
        // crash before the data flush (stage = 1st, entry+terminator = 2nd,
        // data = 3rd).
        dev.schedule_crash_after_line_flushes(2);
        let _ = s.set_word(o, 0, 99);
        dev.recover();
        let s2 = PcjStore::attach(dev).unwrap();
        let root = s2.root();
        assert_eq!(s2.device().read_u64(root.0 as usize + HEADER_WORDS * 8), 5);
    }

    #[test]
    fn logged_store_costs_one_metadata_flush_per_entry() {
        let (dev, mut s) = store();
        let o = s.create("T", 2, false).unwrap();
        let f0 = dev.stats().line_flushes;
        s.set_word(o, 0, 1).unwrap();
        // stage + (entry + terminator, one line) + data + log invalidate +
        // stage reset — no per-entry count flush.
        assert_eq!(dev.stats().line_flushes - f0, 5);
    }

    #[test]
    fn crash_sweep_over_logged_store_is_atomic() {
        let (dev, mut s) = store();
        let o = s.create("T", 1, false).unwrap();
        s.set_root(o).unwrap();
        s.set_word(o, 0, 5).unwrap();
        let base = dev.snapshot_persisted();
        let f0 = dev.stats().line_flushes;
        s.set_word(o, 0, 99).unwrap();
        let per_op = dev.stats().line_flushes - f0;
        for at in 0..=per_op {
            let trial = NvmDevice::new(NvmConfig::with_size(dev.size()));
            trial.write_bytes(0, &base);
            trial.persist(0, base.len());
            let mut st = PcjStore::attach(trial.clone()).unwrap();
            let root = st.root();
            trial.schedule_crash_after_line_flushes(at);
            let _ = st.set_word(root, 0, 99);
            trial.recover();
            let s2 = PcjStore::attach(trial).unwrap();
            let v = s2.device().read_u64(root.0 as usize + HEADER_WORDS * 8);
            assert!(
                v == 5 || v == 99,
                "crash after {at}/{per_op} flushes left torn value {v}"
            );
        }
    }

    #[test]
    fn committed_state_survives_crash() {
        let (dev, mut s) = store();
        let o = s.create("T", 2, false).unwrap();
        s.set_word(o, 0, 7).unwrap();
        s.set_word(o, 1, 8).unwrap();
        s.set_root(o).unwrap();
        dev.crash();
        let mut s2 = PcjStore::attach(dev).unwrap();
        let root = s2.root();
        assert_eq!(s2.get_word(root, 0), 7);
        assert_eq!(s2.get_word(root, 1), 8);
    }

    #[test]
    fn timers_attribute_all_phases_on_create() {
        let (_dev, mut s) = store();
        for i in 0..200 {
            let o = s.create("PersistentLong", 1, false).unwrap();
            s.set_word(o, 0, i).unwrap();
        }
        let b = s.timers();
        for phase in [
            Phase::Data,
            Phase::Allocation,
            Phase::Metadata,
            Phase::Gc,
            Phase::Transaction,
        ] {
            assert!(
                b.get(phase) > std::time::Duration::ZERO,
                "{phase} never timed"
            );
        }
    }

    #[test]
    fn scoped_transact_batches_ops_under_one_stage() {
        let (dev, mut s) = store();
        let o = s.create("T", 2, false).unwrap();
        s.set_word(o, 0, 1).unwrap();
        let f0 = dev.stats().line_flushes;
        s.transact(|s| {
            s.set_word(o, 0, 2)?;
            s.set_word(o, 1, 3)?;
            Ok(())
        })
        .unwrap();
        let batched = dev.stats().line_flushes - f0;
        // One stage set + 2×(record + data) + invalidate + stage reset = 7,
        // versus 2 standalone ops at 5 flushes each.
        assert_eq!(batched, 7);
        assert_eq!(s.get_word(o, 0), 2);
        assert_eq!(s.get_word(o, 1), 3);
    }

    #[test]
    fn nested_transact_error_spares_the_outer_scope() {
        let (dev, mut s) = store();
        let o = s.create("T", 2, false).unwrap();
        s.set_word(o, 0, 1).unwrap();
        s.set_word(o, 1, 2).unwrap();
        let out: crate::Result<()> = s.transact(|s| {
            s.set_word(o, 0, 10)?; // outer store
            let inner: crate::Result<()> = s.transact(|s| {
                s.set_word(o, 1, 20)?; // inner store
                Err(PcjError::LogOverflow)
            });
            assert!(inner.is_err());
            Ok(()) // outer recovers from the inner failure
        });
        assert!(out.is_ok());
        assert_eq!(s.get_word(o, 0), 10, "outer store committed");
        assert_eq!(s.get_word(o, 1), 2, "inner store rolled back");
        assert_eq!(dev.read_u64(meta::TX_STAGE), 0);
    }

    #[test]
    fn scoped_transact_survives_a_panicking_closure() {
        let (dev, mut s) = store();
        let o = s.create("T", 1, false).unwrap();
        s.set_word(o, 0, 5).unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: crate::Result<()> = s.transact(|s| {
                s.set_word(o, 0, 99)?;
                panic!("mid-transaction");
            });
        }));
        assert!(caught.is_err());
        assert_eq!(s.get_word(o, 0), 5, "panic rolled the scope back");
        assert_eq!(dev.read_u64(meta::TX_STAGE), 0, "stage word reset");
        // The store still runs standalone ops with the normal flush cost.
        let f0 = dev.stats().line_flushes;
        s.set_word(o, 0, 6).unwrap();
        assert_eq!(dev.stats().line_flushes - f0, 5);
        assert_eq!(s.get_word(o, 0), 6);
    }

    #[test]
    fn scoped_transact_rolls_back_on_error() {
        let (_dev, mut s) = store();
        let o = s.create("T", 2, false).unwrap();
        s.set_word(o, 0, 5).unwrap();
        let out: crate::Result<()> = s.transact(|s| {
            s.set_word(o, 0, 99)?;
            s.set_word(o, 1, 100)?;
            Err(PcjError::LogOverflow)
        });
        assert!(out.is_err());
        assert_eq!(s.get_word(o, 0), 5, "error rolled the scope back");
        assert_eq!(s.get_word(o, 1), 0);
    }

    #[test]
    fn attach_rejects_blank_device() {
        let dev = NvmDevice::new(NvmConfig::with_size(1 << 20));
        assert!(matches!(PcjStore::attach(dev), Err(PcjError::NotAStore)));
    }

    #[test]
    fn out_of_memory_reported() {
        let dev = NvmDevice::new(NvmConfig::with_size(DATA_OFF + 2048));
        let mut s = PcjStore::format(dev).unwrap();
        let mut last = Ok(PcjRef::NULL);
        for _ in 0..1000 {
            last = s.create("T", 8, false);
            if last.is_err() {
                break;
            }
        }
        assert!(matches!(last, Err(PcjError::OutOfMemory)));
    }
}
