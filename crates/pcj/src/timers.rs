//! Phase accounting for the Figure 6 breakdown.

use std::time::Duration;

/// The cost centers of a PCJ operation (Figure 6's legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Payload reads/writes.
    Data,
    /// Free-list allocation and header setup.
    Allocation,
    /// Type-information memorization (string-keyed type table).
    Metadata,
    /// Reference-count maintenance and recursive frees.
    Gc,
    /// Locking plus undo logging and its flushes.
    Transaction,
    /// Everything else (dispatch, bookkeeping).
    Other,
}

impl Phase {
    /// All phases in Figure 6's stacking order.
    pub const ALL: [Phase; 6] = [
        Phase::Transaction,
        Phase::Gc,
        Phase::Metadata,
        Phase::Allocation,
        Phase::Data,
        Phase::Other,
    ];
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Phase::Data => "Data",
            Phase::Allocation => "Allocation",
            Phase::Metadata => "Metadata",
            Phase::Gc => "GC",
            Phase::Transaction => "Transaction",
            Phase::Other => "Other",
        };
        write!(f, "{s}")
    }
}

/// Accumulated wall time per phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseBreakdown {
    data: Duration,
    allocation: Duration,
    metadata: Duration,
    gc: Duration,
    transaction: Duration,
    other: Duration,
}

impl PhaseBreakdown {
    pub(crate) fn add(&mut self, phase: Phase, d: Duration) {
        *self.slot(phase) += d;
    }

    fn slot(&mut self, phase: Phase) -> &mut Duration {
        match phase {
            Phase::Data => &mut self.data,
            Phase::Allocation => &mut self.allocation,
            Phase::Metadata => &mut self.metadata,
            Phase::Gc => &mut self.gc,
            Phase::Transaction => &mut self.transaction,
            Phase::Other => &mut self.other,
        }
    }

    /// Time spent in one phase.
    pub fn get(&self, phase: Phase) -> Duration {
        match phase {
            Phase::Data => self.data,
            Phase::Allocation => self.allocation,
            Phase::Metadata => self.metadata,
            Phase::Gc => self.gc,
            Phase::Transaction => self.transaction,
            Phase::Other => self.other,
        }
    }

    /// Total across all phases.
    pub fn total(&self) -> Duration {
        Phase::ALL.iter().map(|&p| self.get(p)).sum()
    }

    /// `(phase, fraction-of-total)` rows, Figure 6 style.
    pub fn fractions(&self) -> Vec<(Phase, f64)> {
        let total = self.total().as_secs_f64().max(f64::MIN_POSITIVE);
        Phase::ALL
            .iter()
            .map(|&p| (p, self.get(p).as_secs_f64() / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let mut b = PhaseBreakdown::default();
        b.add(Phase::Data, Duration::from_millis(10));
        b.add(Phase::Gc, Duration::from_millis(30));
        let sum: f64 = b.fractions().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(b.total(), Duration::from_millis(40));
    }

    #[test]
    fn phases_accumulate() {
        let mut b = PhaseBreakdown::default();
        b.add(Phase::Metadata, Duration::from_millis(5));
        b.add(Phase::Metadata, Duration::from_millis(5));
        assert_eq!(b.get(Phase::Metadata), Duration::from_millis(10));
    }

    #[test]
    fn display_names() {
        assert_eq!(Phase::Gc.to_string(), "GC");
        assert_eq!(Phase::Transaction.to_string(), "Transaction");
    }
}
