//! Persistent Java Object (PJO): JPA-compatible persistence directly atop
//! PJH (§5).
//!
//! PJO keeps the JPA programming model — the same [`EntityMeta`] /
//! [`EntityObject`](espresso_jpa::EntityObject) types and the same `begin`
//! / `persist` / `merge` / `remove` / `commit` surface as `espresso-jpa` —
//! but replaces the persistence pipeline (Figure 13):
//!
//! * **No SQL transformation.** At commit, each entity becomes a
//!   `DBPersistable` shipped straight to the backend through the direct
//!   interface of `espresso-minidb` (`persistInTable`), eliminating the
//!   phase Figure 4 blames for ~42% of commit time.
//! * **A PJH-resident copy.** Every committed entity also lives as a real
//!   object in the Persistent Java Heap (ints inline, strings as
//!   persistent byte arrays), so the runtime can hand out references to
//!   persisted data instead of keeping volatile duplicates — the **data
//!   deduplication** of Figure 14(d): after commit,
//!   [`PjoEntityManager::find`] hydrates from NVM when it can.
//! * **Field-level tracking** (§5): the enhancer's dirty bitmap travels to
//!   the backend, so updates touch only modified columns
//!   ([`Connection::update_fields`](espresso_minidb::Connection::update_fields))
//!   — important because NVM writes are several times costlier than reads.
//!
//! [`EntityMeta`]: espresso_jpa::EntityMeta
//!
//! # Example
//!
//! ```
//! use espresso_jpa::EntityMeta;
//! use espresso_minidb::{ColType, Database, Value};
//! use espresso_nvm::{NvmConfig, NvmDevice};
//! use espresso_core::{Pjh, PjhConfig};
//! use espresso_pjo::PjoEntityManager;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let db = Database::create(NvmDevice::new(NvmConfig::with_size(1 << 20)))?;
//! let pjh = Pjh::create(NvmDevice::new(NvmConfig::with_size(8 << 20)), PjhConfig::small())?;
//! let person = EntityMeta::builder("person")
//!     .pk_field("id", ColType::Int)
//!     .field("name", ColType::Text)
//!     .build();
//! let mut em = PjoEntityManager::new(db.connect(), pjh);
//! em.create_schema(&[&person])?;
//! em.begin();
//! let mut p = person.instantiate();
//! p.set(0, Value::Int(1));
//! p.set(1, Value::Str("Jimmy".into()));
//! em.persist(p);
//! em.commit()?;
//! assert!(em.find(&person, &Value::Int(1))?.is_some());
//! # Ok(())
//! # }
//! ```

mod provider;

pub use provider::{PjoEntityManager, PjoError, PjoStats};

/// Result alias for PJO operations.
pub type Result<T> = std::result::Result<T, PjoError>;
