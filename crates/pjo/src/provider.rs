//! The PJO provider (modified-DataNucleus equivalent).

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

use espresso_core::{CommitReport, CommitTicket, HeapHandle, Pjh, PjhError, ReadSession};
use espresso_jpa::{EntityMeta, EntityObject};
use espresso_minidb::{ColType, Connection, DbError, Value};
use espresso_object::{Ref, Schema};

/// Errors from the PJO provider.
#[derive(Debug)]
pub enum PjoError {
    /// Backend database failure.
    Db(DbError),
    /// Persistent heap failure.
    Pjh(PjhError),
}

impl fmt::Display for PjoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PjoError::Db(e) => write!(f, "backend database: {e}"),
            PjoError::Pjh(e) => write!(f, "persistent heap: {e}"),
        }
    }
}

impl std::error::Error for PjoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PjoError::Db(e) => Some(e),
            PjoError::Pjh(e) => Some(e),
        }
    }
}

impl From<DbError> for PjoError {
    fn from(e: DbError) -> Self {
        PjoError::Db(e)
    }
}

impl From<PjhError> for PjoError {
    fn from(e: PjhError) -> Self {
        PjoError::Pjh(e)
    }
}

/// Provider-side counters; the "transformation" column of Figure 17 is
/// `ship_ns` here (object → DBPersistable handoff), which PJO makes tiny.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PjoStats {
    /// Nanoseconds preparing/shipping DBPersistable objects (PJO's whole
    /// "transformation" replacement).
    pub ship_ns: u64,
    /// Nanoseconds maintaining PJH copies (deduplication writes).
    pub dedup_ns: u64,
    /// Backend calls issued.
    pub statements: u64,
    /// Transactions committed.
    pub commits: u64,
    /// `find` calls answered from the PJH copy instead of the backend.
    pub dedup_hits: u64,
}

enum Pending {
    Insert(EntityObject),
    Update(EntityObject),
    Remove(EntityMeta, Value),
}

fn key_i64(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        _ => 0,
    }
}

/// The typed schema of an entity's DBPersistable copy: `Int` columns
/// become `i64` fields, `Text` columns become `str` fields (length-
/// prefixed byte arrays, `Pjh::alloc_string`'s representation). Going
/// through [`Pjh::register_schema`] gives the dedup copies the same
/// schema-evolution guard as hand-declared classes — an entity whose
/// column types drifted from the heap image is rejected with a real
/// error at registration.
fn pjh_schema(meta: &EntityMeta) -> Schema {
    meta.fields()
        .iter()
        .fold(
            Schema::builder(&format!("DB{}", meta.name())),
            |b, (n, t)| match t {
                ColType::Int => b.i64_field(n),
                ColType::Text => b.str_field(n),
            },
        )
        .build()
}

fn pjh_klass(h: &mut Pjh, meta: &EntityMeta) -> Result<espresso_object::KlassId, PjhError> {
    h.register_schema(&pjh_schema(meta))
}

/// The PJO entity manager: JPA's API, PJH's data path. See the
/// [crate docs](crate).
///
/// The persistent heap is held through a shared [`HeapHandle`], so the
/// same heap can serve other sessions concurrently;
/// [`commit`](Self::commit) ends with the handle's commit point when the
/// heap is manager-backed.
pub struct PjoEntityManager {
    conn: Connection,
    pjh: HeapHandle,
    pending: Vec<Pending>,
    /// Deduplicated copies: (table, pk) → PJH object.
    copies: HashMap<(String, i64), Ref>,
    dedup: bool,
    stats: PjoStats,
}

impl fmt::Debug for PjoEntityManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PjoEntityManager")
            .field("pending", &self.pending.len())
            .field("copies", &self.copies.len())
            .finish()
    }
}

impl PjoEntityManager {
    /// Wraps a backend connection and a persistent heap (a shared
    /// [`HeapHandle`] or a raw [`Pjh`], which is wrapped in an unmanaged
    /// handle).
    pub fn new(conn: Connection, pjh: impl Into<HeapHandle>) -> PjoEntityManager {
        PjoEntityManager {
            conn,
            pjh: pjh.into(),
            pending: Vec::new(),
            copies: HashMap::new(),
            dedup: false,
            stats: PjoStats::default(),
        }
    }

    /// Enables or disables the data-deduplication optimization (§5,
    /// Figure 14d): when on, commits also write a DBPersistable copy into
    /// PJH and `find` hydrates from it. Off by default because it trades
    /// extra commit work for cheaper retrieves.
    pub fn set_dedup(&mut self, enabled: bool) {
        self.dedup = enabled;
    }

    /// Provider counters.
    pub fn stats(&self) -> PjoStats {
        self.stats
    }

    /// Resets the provider counters.
    pub fn reset_stats(&mut self) {
        self.stats = PjoStats::default();
    }

    /// A read-only session over the persistent heap holding the
    /// deduplicated copies. Lock-free: it never blocks (or is blocked
    /// by) writers — see [`ReadSession`] for the exact guarantees.
    pub fn pjh(&self) -> ReadSession {
        self.pjh.read()
    }

    /// The shared handle to the heap holding the deduplicated copies.
    pub fn pjh_handle(&self) -> &HeapHandle {
        &self.pjh
    }

    /// The backend connection.
    pub fn connection(&mut self) -> &mut Connection {
        &mut self.conn
    }

    /// Creates backend tables directly (no DDL text).
    ///
    /// # Errors
    ///
    /// Database errors.
    pub fn create_schema(&mut self, metas: &[&EntityMeta]) -> crate::Result<()> {
        for meta in metas {
            self.conn
                .create_table_direct(meta.name(), meta.fields().to_vec(), meta.pk())?;
            for c in 0..meta.collections().len() {
                self.conn.create_table_direct(
                    &meta.collection_table(c),
                    vec![
                        ("rowid".to_string(), ColType::Int),
                        ("owner".to_string(), ColType::Int),
                        ("idx".to_string(), ColType::Int),
                        ("value".to_string(), ColType::Int),
                    ],
                    0,
                )?;
            }
        }
        Ok(())
    }

    /// Starts a transaction.
    pub fn begin(&mut self) {
        self.pending.clear();
        self.conn.begin();
    }

    /// Schedules an insert (`em.persist(p)` — unchanged from JPA).
    pub fn persist(&mut self, obj: EntityObject) {
        self.pending.push(Pending::Insert(obj));
    }

    /// Schedules an update; only dirty fields will reach the backend.
    pub fn merge(&mut self, obj: EntityObject) {
        self.pending.push(Pending::Update(obj));
    }

    /// Schedules a removal by key.
    pub fn remove(&mut self, meta: &EntityMeta, key: Value) {
        self.pending.push(Pending::Remove(meta.clone(), key));
    }

    // ---- the PJH DBPersistable copy (Figure 14) ----

    fn store_copy(&mut self, obj: &EntityObject) -> crate::Result<Ref> {
        let t0 = Instant::now();
        // One write-lock scope covers the whole copy: klass resolution,
        // allocation, field stores, and the object flush.
        let copy = {
            let mut h = self.pjh.write();
            let kid = pjh_klass(&mut h, obj.meta())?;
            let copy = h.alloc_instance(kid)?;
            for (i, (_, ty)) in obj.meta().fields().iter().enumerate() {
                match ty {
                    ColType::Int => h.set_field(copy, i, key_i64(obj.get(i)) as u64),
                    ColType::Text => {
                        let s = match obj.get(i) {
                            Value::Str(s) => s.clone(),
                            _ => String::new(),
                        };
                        let r = h.alloc_string(&s)?;
                        h.set_field_ref(copy, i, r)?;
                    }
                }
            }
            h.flush_object(copy);
            copy
        };
        self.copies
            .insert((obj.meta().name().to_string(), key_i64(obj.key())), copy);
        self.stats.dedup_ns += t0.elapsed().as_nanos() as u64;
        Ok(copy)
    }

    /// The deduplicated PJH copy of `(meta, key)`, if one exists.
    pub fn dedup_ref(&self, meta: &EntityMeta, key: &Value) -> Option<Ref> {
        self.copies
            .get(&(meta.name().to_string(), key_i64(key)))
            .copied()
    }

    fn hydrate_from_copy(&self, meta: &EntityMeta, copy: Ref) -> EntityObject {
        let h = self.pjh.read();
        let mut obj = meta.instantiate();
        for (i, (_, ty)) in meta.fields().iter().enumerate() {
            let v = match ty {
                ColType::Int => Value::Int(h.field(copy, i) as i64),
                ColType::Text => {
                    let r = h.field_ref(copy, i);
                    if r.is_null() {
                        Value::Null
                    } else {
                        Value::Str(h.read_string(r))
                    }
                }
            };
            obj.set(i, v);
        }
        obj
    }

    // ---- query & commit ----

    /// Loads an entity. Served from the PJH copy (data deduplication) when
    /// one exists and the entity has no collections; otherwise from the
    /// backend through the direct interface.
    ///
    /// # Errors
    ///
    /// Database errors.
    pub fn find(&mut self, meta: &EntityMeta, key: &Value) -> crate::Result<Option<EntityObject>> {
        if meta.collections().is_empty() {
            if let Some(copy) = self.dedup_ref(meta, key) {
                self.stats.dedup_hits += 1;
                let mut obj = self.hydrate_from_copy(meta, copy);
                obj.clear_dirty_public();
                return Ok(Some(obj));
            }
        }
        let Some(row) = self.conn.find_row(meta.name(), key)? else {
            return Ok(None);
        };
        let mut obj = meta.instantiate();
        for (i, v) in row.into_iter().enumerate() {
            obj.set(i, v);
        }
        for c in 0..meta.collections().len() {
            let rows = self.conn.find_rows_by(&meta.collection_table(c), 1, key)?;
            let mut items: Vec<(i64, i64)> = rows
                .into_iter()
                .map(|r| (key_i64(&r[2]), key_i64(&r[3])))
                .collect();
            items.sort_unstable();
            obj.set_collection(c, items.into_iter().map(|(_, v)| v).collect());
        }
        obj.clear_dirty_public();
        Ok(Some(obj))
    }

    fn flush_collections(&mut self, obj: &EntityObject, rowid: &mut i64) -> crate::Result<()> {
        for c in 0..obj.meta().collections().len() {
            let table = obj.meta().collection_table(c);
            let key = obj.key().clone();
            for row in self.conn.find_rows_by(&table, 1, &key)? {
                self.conn.delete_row(&table, &row[0])?;
                self.stats.statements += 1;
            }
            for (idx, v) in obj.collection(c).iter().enumerate() {
                *rowid += 1;
                self.conn.persist_row(
                    &table,
                    vec![
                        Value::Int(key_i64(&key) * 1_000_000 + *rowid),
                        key.clone(),
                        Value::Int(idx as i64),
                        Value::Int(*v),
                    ],
                )?;
                self.stats.statements += 1;
            }
        }
        Ok(())
    }

    /// Commits: DBPersistable objects go straight to the backend — no SQL
    /// text anywhere on this path — and PJH copies are written for
    /// deduplication.
    ///
    /// JPA promises durability when `commit` returns, so this ends with
    /// the heap's synchronous commit barrier. Use
    /// [`commit_async`](Self::commit_async) to overlap the image sync
    /// with the next transaction instead.
    ///
    /// # Errors
    ///
    /// Database or heap errors.
    pub fn commit(&mut self) -> crate::Result<()> {
        self.commit_backend()?;
        // Transaction boundary == durability boundary: when the heap is
        // manager-backed, wait out the incremental image sync of the dedup
        // copies (a no-op report for unmanaged heaps) — JPA `commit()`
        // promises durability on return, so this is the sync barrier.
        let _: CommitReport = self.pjh.commit_sync()?;
        self.stats.commits += 1;
        Ok(())
    }

    /// The opt-in pipelined commit: identical to [`commit`](Self::commit)
    /// on the backend side, but the heap commit only **seals** the epoch
    /// holding the dedup copies and returns its [`CommitTicket`] — the
    /// image sync runs on the heap's background flush pipeline while the
    /// caller starts the next transaction. `ticket.wait()` is the
    /// durability barrier; dropping the ticket still commits in the
    /// background (a later load waits for pending applies).
    ///
    /// This relaxes JPA's durable-on-return promise for callers that
    /// batch transactions and take one barrier at the end; `commit()`
    /// keeps the strict semantics.
    ///
    /// # Errors
    ///
    /// Database or heap errors at seal time; apply-time I/O errors
    /// surface through the ticket.
    pub fn commit_async(&mut self) -> crate::Result<CommitTicket> {
        self.commit_backend()?;
        let ticket = self.pjh.commit()?;
        self.stats.commits += 1;
        Ok(ticket)
    }

    /// The backend half of a commit: drains the pending queue into the
    /// database (and the dedup copies into the heap), then commits the
    /// database transaction.
    fn commit_backend(&mut self) -> crate::Result<()> {
        let pending = std::mem::take(&mut self.pending);
        let mut rowid = 0i64;
        for op in &pending {
            match op {
                Pending::Insert(obj) => {
                    let t0 = Instant::now();
                    let row = obj.values_vec(); // the whole "transformation"
                    self.stats.ship_ns += t0.elapsed().as_nanos() as u64;
                    self.conn.persist_row(obj.meta().name(), row)?;
                    self.stats.statements += 1;
                    self.flush_collections(obj, &mut rowid)?;
                    if self.dedup {
                        self.store_copy(obj)?;
                    }
                }
                Pending::Update(obj) => {
                    // §5 field-level tracking: ship only the dirty bitmap's
                    // columns.
                    let t0 = Instant::now();
                    let fields: Vec<(usize, Value)> = obj
                        .dirty_fields()
                        .into_iter()
                        .filter(|&i| i != obj.meta().pk())
                        .map(|i| (i, obj.get(i).clone()))
                        .collect();
                    self.stats.ship_ns += t0.elapsed().as_nanos() as u64;
                    self.conn
                        .update_fields(obj.meta().name(), obj.key(), &fields)?;
                    self.stats.statements += 1;
                    if !obj.meta().collections().is_empty() {
                        self.flush_collections(obj, &mut rowid)?;
                    }
                    if self.dedup {
                        // Copy-on-write refresh of the dedup copy.
                        self.store_copy(obj)?;
                    }
                }
                Pending::Remove(meta, key) => {
                    self.conn.delete_row(meta.name(), key)?;
                    self.stats.statements += 1;
                    for c in 0..meta.collections().len() {
                        let table = meta.collection_table(c);
                        for row in self.conn.find_rows_by(&table, 1, key)? {
                            self.conn.delete_row(&table, &row[0])?;
                        }
                    }
                    self.copies.remove(&(meta.name().to_string(), key_i64(key)));
                }
            }
        }
        self.conn.commit()?;
        Ok(())
    }

    /// Drops unreferenced PJH copies (e.g. after removals) by collecting
    /// the persistent heap with the live copies as roots. Forces a full
    /// compacting cycle: copy reclamation is about space, so trading pause
    /// time for maximum reclamation is the right call here (the heap's
    /// incremental mode would leave dead copies in partially-live regions).
    ///
    /// # Errors
    ///
    /// Heap errors.
    pub fn gc_copies(&mut self) -> crate::Result<()> {
        let roots: Vec<Ref> = self.copies.values().copied().collect();
        let report = self.pjh.with_mut(|h| h.gc_full(&roots))?;
        for r in self.copies.values_mut() {
            if let Some(&new) = report.relocations.get(&r.addr()) {
                *r = Ref::new(espresso_object::Space::Persistent, new);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_core::PjhConfig;
    use espresso_minidb::Database;
    use espresso_nvm::{NvmConfig, NvmDevice};

    fn em() -> (Database, PjoEntityManager) {
        let db = Database::create(NvmDevice::new(NvmConfig::with_size(4 << 20))).unwrap();
        let pjh = Pjh::create(
            NvmDevice::new(NvmConfig::with_size(8 << 20)),
            PjhConfig::small(),
        )
        .unwrap();
        let em = PjoEntityManager::new(db.connect(), pjh);
        (db, em)
    }

    fn person() -> EntityMeta {
        EntityMeta::builder("person")
            .pk_field("id", ColType::Int)
            .field("name", ColType::Text)
            .field("age", ColType::Int)
            .build()
    }

    fn mk(meta: &EntityMeta, id: i64, name: &str, age: i64) -> EntityObject {
        let mut o = meta.instantiate();
        o.set(0, Value::Int(id));
        o.set(1, Value::Str(name.into()));
        o.set(2, Value::Int(age));
        o
    }

    #[test]
    fn crud_lifecycle_matches_jpa_semantics() {
        let (_db, mut em) = em();
        let meta = person();
        em.create_schema(&[&meta]).unwrap();
        em.begin();
        em.persist(mk(&meta, 1, "Ann", 30));
        em.persist(mk(&meta, 2, "Bob", 40));
        em.commit().unwrap();

        let mut ann = em.find(&meta, &Value::Int(1)).unwrap().unwrap();
        assert_eq!(ann.get(1), &Value::Str("Ann".into()));

        em.begin();
        ann.set(2, Value::Int(31));
        em.merge(ann);
        em.commit().unwrap();
        assert_eq!(
            em.find(&meta, &Value::Int(1)).unwrap().unwrap().get(2),
            &Value::Int(31)
        );

        em.begin();
        em.remove(&meta, Value::Int(1));
        em.commit().unwrap();
        assert!(em.find(&meta, &Value::Int(1)).unwrap().is_none());
    }

    #[test]
    fn no_sql_text_on_the_pjo_path() {
        let (db, mut em) = em();
        let meta = person();
        em.create_schema(&[&meta]).unwrap();
        db.reset_stats();
        em.begin();
        for i in 0..100 {
            em.persist(mk(&meta, i, "X", i));
        }
        em.commit().unwrap();
        assert_eq!(db.stats().parse_ns, 0, "no statement was ever parsed");
        assert_eq!(db.row_count("person").unwrap(), 100);
    }

    #[test]
    fn dedup_copy_lives_in_pjh_and_serves_find() {
        let (_db, mut em) = em();
        em.set_dedup(true);
        let meta = person();
        em.create_schema(&[&meta]).unwrap();
        em.begin();
        em.persist(mk(&meta, 1, "Ann", 30));
        em.commit().unwrap();
        let copy = em.dedup_ref(&meta, &Value::Int(1)).expect("copy exists");
        assert!(copy.is_persistent());
        assert_eq!(em.pjh().klass_of(copy).name(), "DBperson");
        let before = em.stats().dedup_hits;
        let found = em.find(&meta, &Value::Int(1)).unwrap().unwrap();
        assert_eq!(em.stats().dedup_hits, before + 1);
        assert_eq!(found.get(1), &Value::Str("Ann".into()));
        assert_eq!(found.get(2), &Value::Int(30));
    }

    #[test]
    fn field_level_tracking_updates_only_dirty_columns() {
        let (_db, mut em) = em();
        let meta = person();
        em.create_schema(&[&meta]).unwrap();
        em.begin();
        em.persist(mk(&meta, 1, "Ann", 30));
        em.commit().unwrap();
        let mut obj = em.find(&meta, &Value::Int(1)).unwrap().unwrap();
        obj.set(2, Value::Int(99)); // only age dirty
        assert_eq!(obj.dirty_fields(), vec![2]);
        em.begin();
        em.merge(obj);
        em.commit().unwrap();
        let o = em.find(&meta, &Value::Int(1)).unwrap().unwrap();
        assert_eq!(
            o.get(1),
            &Value::Str("Ann".into()),
            "untouched column preserved"
        );
        assert_eq!(o.get(2), &Value::Int(99));
    }

    #[test]
    fn collections_roundtrip_direct() {
        let (db, mut em) = em();
        let cart = EntityMeta::builder("cart")
            .pk_field("id", ColType::Int)
            .collection("items")
            .build();
        em.create_schema(&[&cart]).unwrap();
        em.begin();
        let mut c = cart.instantiate();
        c.set(0, Value::Int(3));
        c.set_collection(0, vec![7, 8, 9]);
        em.persist(c);
        em.commit().unwrap();
        assert_eq!(db.row_count("cart_items").unwrap(), 3);
        let c = em.find(&cart, &Value::Int(3)).unwrap().unwrap();
        assert_eq!(c.collection(0), &[7, 8, 9]);
    }

    #[test]
    fn backend_rows_survive_crash() {
        let dev = NvmDevice::new(NvmConfig::with_size(4 << 20));
        let db = Database::create(dev.clone()).unwrap();
        let pjh = Pjh::create(
            NvmDevice::new(NvmConfig::with_size(8 << 20)),
            PjhConfig::small(),
        )
        .unwrap();
        let mut em = PjoEntityManager::new(db.connect(), pjh);
        let meta = person();
        em.create_schema(&[&meta]).unwrap();
        em.begin();
        em.persist(mk(&meta, 1, "Ann", 30));
        em.commit().unwrap();
        dev.crash();
        let db2 = Database::open(dev).unwrap();
        assert_eq!(db2.row_count("person").unwrap(), 1);
    }

    #[test]
    fn commit_async_returns_the_ticket_and_lands_in_the_image() {
        use espresso_core::{HeapManager, LoadOptions};
        let mgr = HeapManager::temp().unwrap();
        let handle = mgr.create("dedup", 8 << 20, PjhConfig::small()).unwrap();
        let db = Database::create(NvmDevice::new(NvmConfig::with_size(4 << 20))).unwrap();
        let mut em = PjoEntityManager::new(db.connect(), handle.clone());
        em.set_dedup(true);
        let meta = person();
        em.create_schema(&[&meta]).unwrap();
        em.begin();
        em.persist(mk(&meta, 1, "Ann", 30));
        let ticket = em.commit_async().unwrap();
        assert!(ticket.epoch() >= 1, "manager-backed heap seals an epoch");
        // The durability barrier is explicit now.
        ticket.wait().unwrap();
        assert_eq!(em.stats().commits, 1);
        // The dedup copy reached the image: a reload of the heap sees it.
        drop(em);
        drop(handle);
        let reloaded = mgr.load("dedup", LoadOptions::default()).unwrap();
        reloaded.with(|h| {
            let mut found = false;
            h.for_each_object(|_, k| found |= k.name() == "DBperson");
            assert!(found, "dedup copy object survived in the image");
        });
    }

    #[test]
    fn drifted_entity_schema_is_rejected_by_the_dedup_path() {
        use espresso_core::{HeapManager, LoadOptions};
        let mgr = HeapManager::temp().unwrap();
        let handle = mgr.create("drift", 8 << 20, PjhConfig::small()).unwrap();
        let db = Database::create(NvmDevice::new(NvmConfig::with_size(4 << 20))).unwrap();
        let mut em = PjoEntityManager::new(db.connect(), handle.clone());
        em.set_dedup(true);
        let meta = person();
        em.create_schema(&[&meta]).unwrap();
        em.begin();
        em.persist(mk(&meta, 1, "Ann", 30));
        em.commit().unwrap();
        drop(em);
        drop(handle);
        // Same entity name, but the "age" column became Text: the copy
        // klass would reinterpret persisted words, so registration fails.
        let drifted = EntityMeta::builder("person")
            .pk_field("id", ColType::Int)
            .field("name", ColType::Text)
            .field("age", ColType::Text)
            .build();
        let handle = mgr.load("drift", LoadOptions::default()).unwrap();
        let db2 = Database::create(NvmDevice::new(NvmConfig::with_size(4 << 20))).unwrap();
        let mut em = PjoEntityManager::new(db2.connect(), handle);
        em.set_dedup(true);
        em.create_schema(&[&drifted]).unwrap();
        em.begin();
        let mut o = drifted.instantiate();
        o.set(0, Value::Int(2));
        o.set(1, Value::Str("Bob".into()));
        o.set(2, Value::Str("forty".into()));
        em.persist(o);
        let err = em.commit().unwrap_err();
        assert!(
            matches!(
                err,
                PjoError::Pjh(
                    PjhError::SchemaMismatch { .. } | PjhError::KlassLayoutMismatch { .. }
                )
            ),
            "got {err}"
        );
    }

    #[test]
    fn gc_copies_keeps_live_data() {
        let (_db, mut em) = em();
        em.set_dedup(true);
        let meta = person();
        em.create_schema(&[&meta]).unwrap();
        for i in 0..50 {
            em.begin();
            em.persist(mk(&meta, i, "N", i));
            em.commit().unwrap();
        }
        // Remove half; their copies become garbage.
        for i in 0..25 {
            em.begin();
            em.remove(&meta, Value::Int(i));
            em.commit().unwrap();
        }
        em.gc_copies().unwrap();
        em.pjh().verify_integrity().unwrap();
        let o = em.find(&meta, &Value::Int(30)).unwrap().unwrap();
        assert_eq!(o.get(2), &Value::Int(30));
    }
}
