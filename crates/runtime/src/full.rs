//! Whole-heap mark-compact collector (LISP2 sliding compaction).
//!
//! Everything live — young or old — ends up packed at the bottom of the old
//! space; both young semispaces come out empty. This mirrors PSGC's "old
//! GC collects the whole heap" behaviour (§3.1) that the persistent
//! collector of `espresso-core` is modeled on.

use std::collections::{HashMap, HashSet};

use espresso_object::{Ref, Space, WORD};

use crate::heap::{GcKind, GcResult, HeapError, VolatileHeap};

pub(crate) fn mark_compact(h: &mut VolatileHeap, extra_roots: &[Ref]) -> crate::Result<GcResult> {
    // ---- mark ----
    let mut marked: HashSet<usize> = HashSet::new();
    let mut worklist: Vec<usize> = Vec::new();

    let push = |r: Ref, marked: &mut HashSet<usize>, worklist: &mut Vec<usize>| {
        if r.is_volatile() {
            let idx = r.addr() as usize / WORD;
            if marked.insert(idx) {
                worklist.push(idx);
            }
        }
    };

    let mut handle_roots = Vec::new();
    h.handles.for_each_slot(|r| handle_roots.push(*r));
    for r in handle_roots {
        push(r, &mut marked, &mut worklist);
    }
    for &r in extra_roots {
        push(r, &mut marked, &mut worklist);
    }
    while let Some(idx) = worklist.pop() {
        let mut slots = Vec::new();
        h.for_each_ref_slot(idx, |s| slots.push(s));
        for s in slots {
            push(Ref::from_raw(h.mem[s]), &mut marked, &mut worklist);
        }
    }

    // ---- plan: old-space live objects first (address order), then young ----
    let from = h.from_space();
    let (from_start, _from_end) = (from.start, from.end);
    let mut order: Vec<usize> = Vec::new();
    let mut cursor = h.old.start;
    while cursor < h.old_top {
        let words = h.object_words(cursor);
        if marked.contains(&cursor) {
            order.push(cursor);
        }
        cursor += words;
    }
    let mut cursor = from_start;
    while cursor < h.young_top {
        let words = h.object_words(cursor);
        if marked.contains(&cursor) {
            order.push(cursor);
        }
        cursor += words;
    }

    let mut forwarding: HashMap<usize, usize> = HashMap::new();
    let mut dest = h.old.start;
    for &src in &order {
        let words = h.object_words(src);
        if dest + words > h.old.end {
            return Err(HeapError::OutOfMemory {
                requested_words: words,
            });
        }
        forwarding.insert(src, dest);
        dest += words;
    }

    // ---- update references while objects are still in place ----
    for &src in &order {
        let mut slots = Vec::new();
        h.for_each_ref_slot(src, |s| slots.push(s));
        for s in slots {
            let r = Ref::from_raw(h.mem[s]);
            if r.is_volatile() {
                let t = r.addr() as usize / WORD;
                let nt = *forwarding
                    .get(&t)
                    .expect("live object references unmarked target");
                h.mem[s] = Ref::new(Space::Volatile, (nt * WORD) as u64).to_raw();
            }
        }
    }
    let fwd_ref = |r: Ref, forwarding: &HashMap<usize, usize>| -> Ref {
        if r.is_volatile() {
            let t = r.addr() as usize / WORD;
            match forwarding.get(&t) {
                Some(&nt) => Ref::new(Space::Volatile, (nt * WORD) as u64),
                None => r,
            }
        } else {
            r
        }
    };
    let fwd2 = forwarding.clone();
    h.handles.for_each_slot(|r| *r = fwd_ref(*r, &fwd2));

    // ---- move (address order => non-clobbering sliding) ----
    let mut relocations = HashMap::new();
    for &src in &order {
        let words = h.object_words(src);
        let d = forwarding[&src];
        if d != src {
            h.mem.copy_within(src..src + words, d);
            relocations.insert((src * WORD) as u64, (d * WORD) as u64);
        }
    }

    let survivors = order.len();
    h.old_top = dest;
    h.young_top = from_start;
    h.remembered.clear();
    h.stats.full_gcs += 1;

    Ok(GcResult {
        kind: GcKind::Full,
        relocations,
        promoted: 0,
        survivors,
    })
}

#[cfg(test)]
mod tests {
    use crate::{VolatileHeap, VolatileHeapConfig};
    use espresso_object::FieldDesc;

    fn setup() -> (VolatileHeap, espresso_object::KlassId) {
        let mut h = VolatileHeap::new(VolatileHeapConfig::small());
        let k = h.register_instance(
            "N",
            vec![FieldDesc::prim("v"), FieldDesc::reference("next")],
        );
        (h, k)
    }

    #[test]
    fn empty_heap_full_gc() {
        let (mut h, _) = setup();
        let r = h.collect_full(&[]).unwrap();
        assert_eq!(r.survivors, 0);
    }

    #[test]
    fn young_objects_move_to_old() {
        let (mut h, k) = setup();
        let a = h.alloc_instance(k).unwrap();
        h.set_field(a, 0, 9);
        let root = h.add_root(a);
        h.collect_full(&[]).unwrap();
        let a = h.root(root).unwrap();
        let idx = h.word_index(a);
        assert!(h.in_old(idx));
        assert_eq!(h.field(a, 0), 9);
        let (young_used, _) = h.used_words();
        assert_eq!(young_used, 0);
    }

    #[test]
    fn compaction_slides_left() {
        let (mut h, k) = setup();
        // Interleave kept / garbage objects, then promote them all.
        let mut roots = Vec::new();
        for i in 0..20u64 {
            let o = h.alloc_instance(k).unwrap();
            h.set_field(o, 0, i);
            if i % 2 == 0 {
                roots.push(h.add_root(o));
            }
        }
        h.collect_full(&[]).unwrap();
        let (_, old1) = h.used_words();
        // Kill half the roots; compaction should shrink the old space.
        for (n, r) in roots.iter().enumerate() {
            if n % 2 == 0 {
                h.remove_root(*r);
            }
        }
        h.collect_full(&[]).unwrap();
        let (_, old2) = h.used_words();
        assert!(old2 < old1);
        // Remaining roots still intact: values 2, 6, 10, 14, 18.
        let mut vals: Vec<u64> = roots
            .iter()
            .enumerate()
            .filter(|(n, _)| n % 2 == 1)
            .map(|(_, r)| {
                let o = h.root(*r).unwrap();
                h.field(o, 0)
            })
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![2, 6, 10, 14, 18]);
    }

    #[test]
    fn graph_edges_survive_compaction() {
        let (mut h, k) = setup();
        let a = h.alloc_instance(k).unwrap();
        let ra = h.add_root(a);
        let b = h.alloc_instance(k).unwrap();
        let a = h.root(ra).unwrap();
        h.set_field(a, 0, 1);
        h.set_field(b, 0, 2);
        h.set_field_ref(a, 1, b);
        h.collect_full(&[]).unwrap();
        // Churn + second full gc to force sliding.
        for _ in 0..100 {
            h.alloc_instance(k).unwrap();
        }
        h.collect_full(&[]).unwrap();
        let a = h.root(ra).unwrap();
        let b = h.field_ref(a, 1);
        assert_eq!(h.field(b, 0), 2);
    }

    #[test]
    fn extra_roots_keep_objects_alive() {
        let (mut h, k) = setup();
        let a = h.alloc_instance(k).unwrap();
        h.set_field(a, 0, 77);
        let res = h.collect_full(&[a]).unwrap();
        assert_eq!(res.survivors, 1);
        let new_addr = res.relocations.get(&a.addr()).copied().unwrap_or(a.addr());
        let a2 = espresso_object::Ref::new(espresso_object::Space::Volatile, new_addr);
        assert_eq!(h.field(a2, 0), 77);
    }
}
