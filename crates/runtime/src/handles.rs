//! GC-safe external references into the volatile heap.

use espresso_object::Ref;

/// A stable index into the heap's root table.
///
/// Both collectors move objects, so raw [`Ref`]s held outside the heap go
/// stale across a collection. A `Handle` names a root-table slot that the
/// collectors update in place — the moral equivalent of a JNI global ref.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle(pub(crate) u32);

/// The root table backing [`Handle`]s.
#[derive(Debug, Default)]
pub(crate) struct HandleTable {
    slots: Vec<Option<Ref>>,
    free: Vec<u32>,
}

impl HandleTable {
    pub(crate) fn insert(&mut self, r: Ref) -> Handle {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = Some(r);
            Handle(i)
        } else {
            self.slots.push(Some(r));
            Handle((self.slots.len() - 1) as u32)
        }
    }

    pub(crate) fn get(&self, h: Handle) -> Option<Ref> {
        self.slots.get(h.0 as usize).copied().flatten()
    }

    pub(crate) fn set(&mut self, h: Handle, r: Ref) {
        let slot = self.slots.get_mut(h.0 as usize).expect("stale handle");
        assert!(slot.is_some(), "handle was released");
        *slot = Some(r);
    }

    pub(crate) fn remove(&mut self, h: Handle) {
        if let Some(slot) = self.slots.get_mut(h.0 as usize) {
            if slot.take().is_some() {
                self.free.push(h.0);
            }
        }
    }

    /// Snapshot of every live slot value.
    pub(crate) fn values(&self) -> Vec<Ref> {
        self.slots.iter().flatten().copied().collect()
    }

    /// Visits every live slot mutably.
    pub(crate) fn for_each_slot(&mut self, mut f: impl FnMut(&mut Ref)) {
        for slot in self.slots.iter_mut().flatten() {
            f(slot);
        }
    }

    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.slots.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso_object::Space;

    #[test]
    fn insert_get_remove() {
        let mut t = HandleTable::default();
        let r = Ref::new(Space::Volatile, 64);
        let h = t.insert(r);
        assert_eq!(t.get(h), Some(r));
        assert_eq!(t.live(), 1);
        t.remove(h);
        assert_eq!(t.get(h), None);
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn slots_are_reused() {
        let mut t = HandleTable::default();
        let h1 = t.insert(Ref::new(Space::Volatile, 8));
        t.remove(h1);
        let h2 = t.insert(Ref::new(Space::Volatile, 16));
        assert_eq!(h1.0, h2.0);
    }

    #[test]
    fn for_each_slot_updates() {
        let mut t = HandleTable::default();
        let h = t.insert(Ref::new(Space::Volatile, 8));
        t.for_each_slot(|r| *r = r.with_addr(80));
        assert_eq!(t.get(h).unwrap().addr(), 80);
    }

    #[test]
    fn double_remove_is_harmless() {
        let mut t = HandleTable::default();
        let h = t.insert(Ref::new(Space::Volatile, 8));
        t.remove(h);
        t.remove(h);
        assert_eq!(t.live(), 0);
        // Freelist must not contain the slot twice.
        let a = t.insert(Ref::new(Space::Volatile, 8));
        let b = t.insert(Ref::new(Space::Volatile, 16));
        assert_ne!(a.0, b.0);
    }
}
