//! The volatile heap proper: spaces, allocation, field access.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use espresso_object::{
    mark, FieldDesc, Klass, KlassId, KlassRegistry, ObjKind, Ref, Space, ARRAY_HEADER_WORDS,
    ARRAY_LENGTH_WORD, HEADER_WORDS, KLASS_WORD, MARK_WORD, WORD,
};

use crate::handles::{Handle, HandleTable};

/// Sizing and policy knobs for [`VolatileHeap`].
#[derive(Debug, Clone, Copy)]
pub struct VolatileHeapConfig {
    /// Words per young semispace.
    pub young_words: usize,
    /// Words in the old space.
    pub old_words: usize,
    /// Survival count after which a young object is promoted.
    pub promotion_age: u8,
}

impl VolatileHeapConfig {
    /// A tiny heap for tests: 4 KiB semispaces, 64 KiB old space.
    pub fn small() -> Self {
        VolatileHeapConfig {
            young_words: 512,
            old_words: 8192,
            promotion_age: 2,
        }
    }

    /// A benchmark-sized heap: 8 MiB semispaces, 256 MiB old space.
    pub fn large() -> Self {
        VolatileHeapConfig {
            young_words: 1 << 20,
            old_words: 32 << 20,
            promotion_age: 2,
        }
    }
}

impl Default for VolatileHeapConfig {
    fn default() -> Self {
        VolatileHeapConfig {
            young_words: 1 << 16,
            old_words: 1 << 20,
            promotion_age: 2,
        }
    }
}

/// Errors reported by heap operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// Allocation failed even after collection.
    OutOfMemory {
        /// Words requested by the failing allocation.
        requested_words: usize,
    },
    /// The object is larger than any space can ever hold.
    TooLarge {
        /// Words requested.
        requested_words: usize,
    },
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfMemory { requested_words } => {
                write!(f, "out of memory allocating {requested_words} words")
            }
            HeapError::TooLarge { requested_words } => {
                write!(f, "object of {requested_words} words exceeds heap capacity")
            }
        }
    }
}

impl std::error::Error for HeapError {}

/// Which collector ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcKind {
    /// Young-generation scavenge.
    Young,
    /// Whole-heap mark-compact.
    Full,
}

/// Outcome of a collection.
#[derive(Debug, Clone)]
pub struct GcResult {
    /// Which collector ran.
    pub kind: GcKind,
    /// Byte-address relocations (old address → new address) for every moved
    /// object. Callers holding raw [`Ref`]s (e.g. the VM patching
    /// NVM-resident pointers to volatile objects) rewrite through this map.
    pub relocations: HashMap<u64, u64>,
    /// Objects promoted into the old generation.
    pub promoted: usize,
    /// Live objects after the collection.
    pub survivors: usize,
}

/// Heap-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Completed young collections.
    pub young_gcs: u64,
    /// Completed full collections.
    pub full_gcs: u64,
    /// Objects allocated over the heap's lifetime.
    pub allocations: u64,
    /// Objects promoted over the heap's lifetime.
    pub promotions: u64,
}

pub(crate) struct SpaceRange {
    pub start: usize, // word index
    pub end: usize,   // word index, exclusive
}

/// A generational volatile heap (young scavenge + old mark-compact).
///
/// Addresses are byte offsets inside a single arena; word 0 is reserved so
/// that address 0 can serve as null. See the crate docs for an example.
pub struct VolatileHeap {
    pub(crate) mem: Vec<u64>,
    pub(crate) young_a: SpaceRange,
    pub(crate) young_b: SpaceRange,
    pub(crate) old: SpaceRange,
    pub(crate) from_is_a: bool,
    pub(crate) young_top: usize,
    pub(crate) old_top: usize,
    pub(crate) registry: KlassRegistry,
    pub(crate) handles: HandleTable,
    /// Word indices of old-space objects that may hold young references.
    pub(crate) remembered: HashSet<usize>,
    pub(crate) promotion_age: u8,
    pub(crate) stats: HeapStats,
}

impl fmt::Debug for VolatileHeap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VolatileHeap")
            .field("young_words", &(self.young_a.end - self.young_a.start))
            .field("old_words", &(self.old.end - self.old.start))
            .field("young_used", &(self.young_top - self.from_space().start))
            .field("old_used", &(self.old_top - self.old.start))
            .finish()
    }
}

impl VolatileHeap {
    /// Creates an empty heap.
    pub fn new(config: VolatileHeapConfig) -> VolatileHeap {
        let y = config.young_words.max(16);
        let o = config.old_words.max(16);
        let total = 1 + 2 * y + o;
        VolatileHeap {
            mem: vec![0; total],
            young_a: SpaceRange {
                start: 1,
                end: 1 + y,
            },
            young_b: SpaceRange {
                start: 1 + y,
                end: 1 + 2 * y,
            },
            old: SpaceRange {
                start: 1 + 2 * y,
                end: total,
            },
            from_is_a: true,
            young_top: 1,
            old_top: 1 + 2 * y,
            registry: KlassRegistry::new(),
            handles: HandleTable::default(),
            remembered: HashSet::new(),
            promotion_age: config.promotion_age.max(1),
            stats: HeapStats::default(),
        }
    }

    // ---- class registration (the Meta Space) ----

    /// Registers an instance class in this heap's Meta Space.
    pub fn register_instance(&mut self, name: &str, fields: Vec<FieldDesc>) -> KlassId {
        self.registry.register_instance(name, fields)
    }

    /// Registers the object-array class for `elem_name`.
    pub fn register_obj_array(&mut self, elem_name: &str) -> KlassId {
        self.registry.register_obj_array(elem_name)
    }

    /// Registers the primitive array class.
    pub fn register_prim_array(&mut self) -> KlassId {
        self.registry.register_prim_array()
    }

    /// This heap's class registry.
    pub fn registry(&self) -> &KlassRegistry {
        &self.registry
    }

    /// The klass of an object.
    ///
    /// # Panics
    ///
    /// Panics on null or a dangling reference.
    pub fn klass_of(&self, r: Ref) -> Arc<Klass> {
        let idx = self.word_index(r);
        let kid = KlassId(self.mem[idx + KLASS_WORD] as u32);
        self.registry.by_id(kid).expect("dangling klass id").clone()
    }

    // ---- spaces ----

    // Semispace-GC terminology ("from-space"), not a conversion constructor.
    #[allow(clippy::wrong_self_convention)]
    pub(crate) fn from_space(&self) -> &SpaceRange {
        if self.from_is_a {
            &self.young_a
        } else {
            &self.young_b
        }
    }

    pub(crate) fn to_space(&self) -> &SpaceRange {
        if self.from_is_a {
            &self.young_b
        } else {
            &self.young_a
        }
    }

    pub(crate) fn in_young(&self, word_idx: usize) -> bool {
        let f = self.from_space();
        word_idx >= f.start && word_idx < f.end
    }

    pub(crate) fn in_old(&self, word_idx: usize) -> bool {
        word_idx >= self.old.start && word_idx < self.old.end
    }

    pub(crate) fn word_index(&self, r: Ref) -> usize {
        assert!(!r.is_null(), "null dereference");
        assert_eq!(r.space(), Space::Volatile, "volatile heap got {r:?}");
        let addr = r.addr() as usize;
        assert_eq!(addr % WORD, 0, "misaligned address {addr:#x}");
        addr / WORD
    }

    pub(crate) fn ref_at(&self, word_idx: usize) -> Ref {
        Ref::new(Space::Volatile, (word_idx * WORD) as u64)
    }

    // ---- allocation ----

    fn init_object(&mut self, idx: usize, kid: KlassId, words: usize, array_len: Option<usize>) {
        self.mem[idx..idx + words].iter_mut().for_each(|w| *w = 0);
        self.mem[idx + MARK_WORD] = mark::new(0);
        self.mem[idx + KLASS_WORD] = kid.0 as u64;
        if let Some(len) = array_len {
            self.mem[idx + ARRAY_LENGTH_WORD] = len as u64;
        }
        self.stats.allocations += 1;
    }

    fn try_young(&mut self, words: usize) -> Option<usize> {
        let f = if self.from_is_a {
            &self.young_a
        } else {
            &self.young_b
        };
        if self.young_top + words <= f.end {
            let idx = self.young_top;
            self.young_top += words;
            Some(idx)
        } else {
            None
        }
    }

    pub(crate) fn try_old(&mut self, words: usize) -> Option<usize> {
        if self.old_top + words <= self.old.end {
            let idx = self.old_top;
            self.old_top += words;
            Some(idx)
        } else {
            None
        }
    }

    fn alloc_words(&mut self, words: usize) -> crate::Result<usize> {
        let young_cap = self.young_a.end - self.young_a.start;
        let old_cap = self.old.end - self.old.start;
        if words > young_cap && words > old_cap {
            return Err(HeapError::TooLarge {
                requested_words: words,
            });
        }
        if words <= young_cap {
            if let Some(idx) = self.try_young(words) {
                return Ok(idx);
            }
            self.collect_young(&[]);
            if let Some(idx) = self.try_young(words) {
                return Ok(idx);
            }
        }
        if let Some(idx) = self.try_old(words) {
            return Ok(idx);
        }
        self.collect_full(&[])?;
        if words <= young_cap {
            if let Some(idx) = self.try_young(words) {
                return Ok(idx);
            }
        }
        self.try_old(words).ok_or(HeapError::OutOfMemory {
            requested_words: words,
        })
    }

    /// Allocates a zeroed instance of `kid` (the `new` path).
    ///
    /// May trigger a young or full collection; raw refs not protected by a
    /// [`Handle`] become stale across this call.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] if space cannot be reclaimed;
    /// [`HeapError::TooLarge`] for absurd sizes.
    ///
    /// # Panics
    ///
    /// Panics if `kid` is unknown or not an instance class.
    pub fn alloc_instance(&mut self, kid: KlassId) -> crate::Result<Ref> {
        let words = self
            .registry
            .by_id(kid)
            .expect("unknown klass")
            .instance_words();
        let idx = self.alloc_words(words)?;
        self.init_object(idx, kid, words, None);
        Ok(self.ref_at(idx))
    }

    /// Like [`alloc_instance`](Self::alloc_instance) but never collects:
    /// callers that must control GC (the unified VM, which supplies
    /// cross-heap roots) retry after collecting themselves.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] as soon as both spaces are full.
    pub fn alloc_instance_no_gc(&mut self, kid: KlassId) -> crate::Result<Ref> {
        let words = self
            .registry
            .by_id(kid)
            .expect("unknown klass")
            .instance_words();
        let idx = self.alloc_words_no_gc(words)?;
        self.init_object(idx, kid, words, None);
        Ok(self.ref_at(idx))
    }

    /// Array analogue of [`alloc_instance_no_gc`](Self::alloc_instance_no_gc).
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] as soon as both spaces are full.
    pub fn alloc_array_no_gc(&mut self, kid: KlassId, len: usize) -> crate::Result<Ref> {
        let words = self
            .registry
            .by_id(kid)
            .expect("unknown klass")
            .array_words(len);
        let idx = self.alloc_words_no_gc(words)?;
        self.init_object(idx, kid, words, Some(len));
        Ok(self.ref_at(idx))
    }

    fn alloc_words_no_gc(&mut self, words: usize) -> crate::Result<usize> {
        let young_cap = self.young_a.end - self.young_a.start;
        let old_cap = self.old.end - self.old.start;
        if words > young_cap && words > old_cap {
            return Err(HeapError::TooLarge {
                requested_words: words,
            });
        }
        if words <= young_cap {
            if let Some(idx) = self.try_young(words) {
                return Ok(idx);
            }
        }
        self.try_old(words).ok_or(HeapError::OutOfMemory {
            requested_words: words,
        })
    }

    /// Allocates a zeroed array of `len` elements with array klass `kid`.
    ///
    /// # Errors
    ///
    /// Same as [`alloc_instance`](Self::alloc_instance).
    ///
    /// # Panics
    ///
    /// Panics if `kid` is unknown or not an array class.
    pub fn alloc_array(&mut self, kid: KlassId, len: usize) -> crate::Result<Ref> {
        let words = self
            .registry
            .by_id(kid)
            .expect("unknown klass")
            .array_words(len);
        let idx = self.alloc_words(words)?;
        self.init_object(idx, kid, words, Some(len));
        Ok(self.ref_at(idx))
    }

    // ---- field access ----

    /// Reads raw field `index` of an instance.
    ///
    /// # Panics
    ///
    /// Panics on null refs or out-of-range indices.
    pub fn field(&self, r: Ref, index: usize) -> u64 {
        let idx = self.word_index(r);
        let k = self.klass_of(r);
        self.mem[idx + k.field_offset(index)]
    }

    /// Writes raw field `index` of an instance.
    ///
    /// Use [`set_field_ref`](Self::set_field_ref) for reference fields so
    /// the remembered-set write barrier runs.
    ///
    /// # Panics
    ///
    /// Panics on null refs or out-of-range indices.
    pub fn set_field(&mut self, r: Ref, index: usize, value: u64) {
        let idx = self.word_index(r);
        let k = self.klass_of(r);
        self.mem[idx + k.field_offset(index)] = value;
    }

    /// Reads reference field `index`.
    pub fn field_ref(&self, r: Ref, index: usize) -> Ref {
        Ref::from_raw(self.field(r, index))
    }

    /// Writes reference field `index` with the old→young write barrier.
    pub fn set_field_ref(&mut self, r: Ref, index: usize, value: Ref) {
        self.set_field(r, index, value.to_raw());
        self.write_barrier(r, value);
    }

    /// Length of an array object.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not an array.
    pub fn array_len(&self, r: Ref) -> usize {
        let idx = self.word_index(r);
        assert!(self.klass_of(r).is_array(), "not an array");
        self.mem[idx + ARRAY_LENGTH_WORD] as usize
    }

    /// Reads array element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn array_get(&self, r: Ref, i: usize) -> u64 {
        let idx = self.word_index(r);
        let len = self.array_len(r);
        assert!(i < len, "array index {i} out of bounds (len {len})");
        self.mem[idx + ARRAY_HEADER_WORDS + i]
    }

    /// Writes array element `i` (primitive).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn array_set(&mut self, r: Ref, i: usize, value: u64) {
        let idx = self.word_index(r);
        let len = self.array_len(r);
        assert!(i < len, "array index {i} out of bounds (len {len})");
        self.mem[idx + ARRAY_HEADER_WORDS + i] = value;
    }

    /// Reads array element `i` as a reference.
    pub fn array_get_ref(&self, r: Ref, i: usize) -> Ref {
        Ref::from_raw(self.array_get(r, i))
    }

    /// Writes array element `i` as a reference, with the write barrier.
    pub fn array_set_ref(&mut self, r: Ref, i: usize, value: Ref) {
        self.array_set(r, i, value.to_raw());
        self.write_barrier(r, value);
    }

    fn write_barrier(&mut self, container: Ref, value: Ref) {
        if !value.is_volatile() {
            return;
        }
        let c = self.word_index(container);
        let v = self.word_index(value);
        if self.in_old(c) && self.in_young(v) {
            self.remembered.insert(c);
        }
    }

    // ---- roots ----

    /// Pins `r` as a GC root and returns its handle.
    pub fn add_root(&mut self, r: Ref) -> Handle {
        self.handles.insert(r)
    }

    /// Current value of a root slot (collectors keep it up to date).
    pub fn root(&self, h: Handle) -> Option<Ref> {
        self.handles.get(h)
    }

    /// Replaces the value in a root slot.
    ///
    /// # Panics
    ///
    /// Panics if the handle was released.
    pub fn set_root(&mut self, h: Handle, r: Ref) {
        self.handles.set(h, r);
    }

    /// Releases a root slot.
    pub fn remove_root(&mut self, h: Handle) {
        self.handles.remove(h);
    }

    // ---- object iteration helpers shared by the collectors ----

    /// Size in words of the object at `word_idx`.
    pub(crate) fn object_words(&self, word_idx: usize) -> usize {
        let kid = KlassId(self.mem[word_idx + KLASS_WORD] as u32);
        let k = self.registry.by_id(kid).expect("dangling klass id");
        match k.kind() {
            ObjKind::Instance => k.instance_words(),
            _ => k.array_words(self.mem[word_idx + ARRAY_LENGTH_WORD] as usize),
        }
    }

    /// Calls `f` with the arena index of every reference slot of the object
    /// at `word_idx`.
    pub(crate) fn for_each_ref_slot(&self, word_idx: usize, mut f: impl FnMut(usize)) {
        let kid = KlassId(self.mem[word_idx + KLASS_WORD] as u32);
        let k = self.registry.by_id(kid).expect("dangling klass id").clone();
        match k.kind() {
            ObjKind::Instance => {
                for i in k.ref_field_indices() {
                    f(word_idx + HEADER_WORDS + i);
                }
            }
            ObjKind::ObjArray => {
                let len = self.mem[word_idx + ARRAY_LENGTH_WORD] as usize;
                for i in 0..len {
                    f(word_idx + ARRAY_HEADER_WORDS + i);
                }
            }
            ObjKind::PrimArray => {}
        }
    }

    /// Visits every object image in the heap (live or not), young space
    /// first, then old.
    pub fn for_each_object(&self, mut f: impl FnMut(Ref)) {
        let mut cursor = self.from_space().start;
        while cursor < self.young_top {
            let words = self.object_words(cursor);
            f(self.ref_at(cursor));
            cursor += words;
        }
        let mut cursor = self.old.start;
        while cursor < self.old_top {
            let words = self.object_words(cursor);
            f(self.ref_at(cursor));
            cursor += words;
        }
    }

    /// Collects every persistent (NVM) reference stored anywhere in this
    /// heap or its root table. The VM passes these as extra roots to the
    /// persistent collector: DRAM-held pointers keep NVM objects alive.
    pub fn persistent_refs(&self) -> Vec<Ref> {
        let mut out = Vec::new();
        self.for_each_object(|r| {
            let idx = self.word_index(r);
            self.for_each_ref_slot(idx, |slot| {
                let v = Ref::from_raw(self.mem[slot]);
                if v.is_persistent() {
                    out.push(v);
                }
            });
        });
        out.extend(
            self.handles
                .values()
                .into_iter()
                .filter(|r| r.is_persistent()),
        );
        out
    }

    /// Rewrites every reference slot in the heap (and the root table)
    /// through `f`. The VM uses this to patch persistent references after
    /// the persistent space compacts.
    pub fn rewrite_refs(&mut self, mut f: impl FnMut(Ref) -> Ref) {
        let mut slots = Vec::new();
        self.for_each_object(|r| {
            let idx = self.word_index(r);
            self.for_each_ref_slot(idx, |s| slots.push(s));
        });
        for s in slots {
            let old = Ref::from_raw(self.mem[s]);
            let new = f(old);
            if new != old {
                self.mem[s] = new.to_raw();
            }
        }
        self.handles.for_each_slot(|r| *r = f(*r));
    }

    /// Words used in each space: `(young, old)`.
    pub fn used_words(&self) -> (usize, usize) {
        (
            self.young_top - self.from_space().start,
            self.old_top - self.old.start,
        )
    }

    /// Lifetime counters.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Forces a young collection. `extra_roots` are kept alive; consult
    /// [`GcResult::relocations`] for their new addresses.
    pub fn collect_young(&mut self, extra_roots: &[Ref]) -> GcResult {
        crate::scavenge::scavenge(self, extra_roots)
    }

    /// Forces a full collection (everything live lands in the old space).
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] if the live set exceeds the old space.
    pub fn collect_full(&mut self, extra_roots: &[Ref]) -> crate::Result<GcResult> {
        crate::full::mark_compact(self, extra_roots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> VolatileHeap {
        VolatileHeap::new(VolatileHeapConfig::small())
    }

    fn node_klass(h: &mut VolatileHeap) -> KlassId {
        h.register_instance(
            "Node",
            vec![FieldDesc::prim("v"), FieldDesc::reference("next")],
        )
    }

    #[test]
    fn alloc_and_field_roundtrip() {
        let mut h = heap();
        let k = node_klass(&mut h);
        let a = h.alloc_instance(k).unwrap();
        h.set_field(a, 0, 42);
        assert_eq!(h.field(a, 0), 42);
        assert_eq!(h.field_ref(a, 1), Ref::NULL);
        assert_eq!(h.klass_of(a).name(), "Node");
    }

    #[test]
    fn arrays_roundtrip() {
        let mut h = heap();
        let pa = h.register_prim_array();
        let arr = h.alloc_array(pa, 10).unwrap();
        assert_eq!(h.array_len(arr), 10);
        h.array_set(arr, 3, 99);
        assert_eq!(h.array_get(arr, 3), 99);
        assert_eq!(h.array_get(arr, 4), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn array_bounds_checked() {
        let mut h = heap();
        let pa = h.register_prim_array();
        let arr = h.alloc_array(pa, 2).unwrap();
        h.array_set(arr, 2, 1);
    }

    #[test]
    fn allocations_are_zeroed() {
        let mut h = heap();
        let k = node_klass(&mut h);
        let a = h.alloc_instance(k).unwrap();
        assert_eq!(h.field(a, 0), 0);
    }

    #[test]
    fn too_large_is_rejected() {
        let mut h = heap();
        let pa = h.register_prim_array();
        assert!(matches!(
            h.alloc_array(pa, 1 << 20),
            Err(HeapError::TooLarge { .. })
        ));
    }

    #[test]
    fn allocation_triggers_young_gc() {
        let mut h = heap();
        let k = node_klass(&mut h);
        // Fill well past one semispace with garbage.
        for _ in 0..1000 {
            h.alloc_instance(k).unwrap();
        }
        assert!(h.stats().young_gcs > 0);
    }

    #[test]
    fn roots_survive_gc_and_update() {
        let mut h = heap();
        let k = node_klass(&mut h);
        let a = h.alloc_instance(k).unwrap();
        h.set_field(a, 0, 7);
        let root = h.add_root(a);
        for _ in 0..2000 {
            h.alloc_instance(k).unwrap();
        }
        let a2 = h.root(root).unwrap();
        assert_eq!(h.field(a2, 0), 7);
    }

    #[test]
    fn linked_structure_survives_collections() {
        let mut h = heap();
        let k = node_klass(&mut h);
        // Build a 50-node list, rooted at the head.
        let head = h.alloc_instance(k).unwrap();
        h.set_field(head, 0, 0);
        let root = h.add_root(head);
        for i in 1..50u64 {
            let head = h.root(root).unwrap();
            let tmp = h.add_root(head);
            let n = h.alloc_instance(k).unwrap();
            let head = h.root(tmp).unwrap();
            h.remove_root(tmp);
            h.set_field(n, 0, i);
            h.set_field_ref(n, 1, head);
            h.set_root(root, n);
        }
        // Churn to force several young GCs and promotions.
        for _ in 0..3000 {
            h.alloc_instance(k).unwrap();
        }
        // Verify the list: values 49, 48, ..., 0.
        let mut cur = h.root(root).unwrap();
        let mut expect = 49u64;
        loop {
            assert_eq!(h.field(cur, 0), expect);
            let next = h.field_ref(cur, 1);
            if next.is_null() {
                break;
            }
            expect -= 1;
            cur = next;
        }
        assert_eq!(expect, 0);
    }

    #[test]
    fn full_gc_reclaims_old_space() {
        let mut h = heap();
        let k = node_klass(&mut h);
        // Promote garbage into the old gen by churning.
        for _ in 0..5000 {
            h.alloc_instance(k).unwrap();
        }
        let (_, old_before) = h.used_words();
        h.collect_full(&[]).unwrap();
        let (_, old_after) = h.used_words();
        assert!(old_after <= old_before);
        assert_eq!(old_after, 0, "no roots -> empty old space");
    }

    #[test]
    fn full_gc_keeps_rooted_graph() {
        let mut h = heap();
        let k = node_klass(&mut h);
        let a = h.alloc_instance(k).unwrap();
        h.set_field(a, 0, 11);
        let b = {
            let ra = h.add_root(a);
            let b = h.alloc_instance(k).unwrap();
            let a = h.root(ra).unwrap();
            h.remove_root(ra);
            h.set_field(b, 0, 22);
            h.set_field_ref(b, 1, a);
            b
        };
        let root = h.add_root(b);
        h.collect_full(&[]).unwrap();
        let b2 = h.root(root).unwrap();
        assert_eq!(h.field(b2, 0), 22);
        let a2 = h.field_ref(b2, 1);
        assert_eq!(h.field(a2, 0), 11);
    }

    #[test]
    fn extra_roots_relocations_reported() {
        let mut h = heap();
        let k = node_klass(&mut h);
        let a = h.alloc_instance(k).unwrap();
        h.set_field(a, 0, 5);
        let result = h.collect_young(&[a]);
        let new_addr = result.relocations.get(&a.addr()).copied().expect("moved");
        let a2 = Ref::new(Space::Volatile, new_addr);
        assert_eq!(h.field(a2, 0), 5);
    }

    #[test]
    fn remembered_set_tracks_old_to_young() {
        let mut h = heap();
        let k = node_klass(&mut h);
        // Make an old object by promoting it.
        let a = h.alloc_instance(k).unwrap();
        let root = h.add_root(a);
        for _ in 0..10 {
            h.collect_young(&[]);
        }
        let old_obj = h.root(root).unwrap();
        assert!(h.in_old(h.word_index(old_obj)));
        // Point it at a fresh young object, drop all other references.
        let young = h.alloc_instance(k).unwrap();
        h.set_field(young, 0, 123);
        let old_obj = h.root(root).unwrap();
        h.set_field_ref(old_obj, 1, young);
        h.collect_young(&[]);
        let old_obj = h.root(root).unwrap();
        let young2 = h.field_ref(old_obj, 1);
        assert!(!young2.is_null());
        assert_eq!(h.field(young2, 0), 123);
    }
}
