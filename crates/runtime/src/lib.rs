//! The volatile "DRAM" heap Espresso extends (§3.1).
//!
//! A reproduction of the Parallel Scavenge heap shape: a young generation
//! collected by a copying scavenger and an old generation collected by a
//! sliding mark-compact collector, with age-based promotion and an
//! old-to-young remembered set. The Persistent Java Heap (`espresso-core`)
//! is built as an additional space *next to* this heap, exactly as the
//! paper adds the Persistent Space next to PSHeap's young and old spaces.
//!
//! This heap is byte-addressed through [`Ref`](espresso_object::Ref)s
//! tagged [`Space::Volatile`](espresso_object::Space); the unified VM
//! (`espresso-vm`) routes `new` here and `pnew` to the persistent heap.
//!
//! # Example
//!
//! ```
//! use espresso_object::FieldDesc;
//! use espresso_runtime::{VolatileHeap, VolatileHeapConfig};
//!
//! # fn main() -> Result<(), espresso_runtime::HeapError> {
//! let mut heap = VolatileHeap::new(VolatileHeapConfig::small());
//! let point = heap.register_instance("Point", vec![FieldDesc::prim("x"), FieldDesc::prim("y")]);
//! let p = heap.alloc_instance(point)?;
//! heap.set_field(p, 0, 3);
//! assert_eq!(heap.field(p, 0), 3);
//! # Ok(())
//! # }
//! ```

mod full;
mod handles;
mod heap;
mod scavenge;

pub use handles::Handle;
pub use heap::{GcResult, HeapError, VolatileHeap, VolatileHeapConfig};

/// Result alias for heap operations.
pub type Result<T> = std::result::Result<T, HeapError>;
