//! Young-generation copying collector (Cheney scan with promotion).

use std::collections::{HashMap, HashSet};

use espresso_object::{mark, Ref, MARK_WORD, WORD};

use crate::heap::{GcKind, GcResult, VolatileHeap};

struct Scavenger<'h> {
    h: &'h mut VolatileHeap,
    from_start: usize,
    from_end: usize,
    to_start: usize,
    to_top: usize,
    promoted_queue: Vec<usize>,
    promoted: usize,
    relocations: HashMap<u64, u64>,
    new_remembered: HashSet<usize>,
    survivors: usize,
}

impl<'h> Scavenger<'h> {
    fn in_from(&self, idx: usize) -> bool {
        idx >= self.from_start && idx < self.from_end
    }

    fn in_to(&self, idx: usize) -> bool {
        idx >= self.to_start && idx < self.to_top
    }

    /// Copies (or finds the copy of) the from-space object at `idx`,
    /// returning its destination index.
    fn evacuate(&mut self, idx: usize) -> usize {
        let mw = self.h.mem[idx + MARK_WORD];
        if mark::is_forwarded(mw) {
            return mark::forwarded_addr(mw) as usize / WORD;
        }
        let words = self.h.object_words(idx);
        let age = mark::age(mw).saturating_add(1);
        let dest = if age >= self.h.promotion_age {
            match self.h.try_old(words) {
                Some(d) => {
                    self.promoted += 1;
                    self.h.stats.promotions += 1;
                    self.promoted_queue.push(d);
                    d
                }
                None => self.bump_to(words),
            }
        } else {
            self.bump_to(words)
        };
        self.h.mem.copy_within(idx..idx + words, dest);
        self.h.mem[dest + MARK_WORD] = mark::with_age(mark::unmarked(mw), age);
        self.h.mem[idx + MARK_WORD] = mark::forwarding((dest * WORD) as u64);
        self.relocations
            .insert((idx * WORD) as u64, (dest * WORD) as u64);
        self.survivors += 1;
        dest
    }

    fn bump_to(&mut self, words: usize) -> usize {
        let d = self.to_top;
        self.to_top += words;
        assert!(
            self.to_top <= self.h.to_space().end,
            "to-space overflow: survivors exceed semispace"
        );
        d
    }

    /// Rewrites the reference at arena slot `slot`; `container` is the word
    /// index of the owning old-space object, if any, for remembered-set
    /// maintenance.
    fn update_slot(&mut self, slot: usize, container: Option<usize>) {
        let r = Ref::from_raw(self.h.mem[slot]);
        if !r.is_volatile() {
            return;
        }
        let idx = r.addr() as usize / WORD;
        let new_idx = if self.in_from(idx) {
            self.evacuate(idx)
        } else {
            idx
        };
        self.h.mem[slot] =
            Ref::new(espresso_object::Space::Volatile, (new_idx * WORD) as u64).to_raw();
        if let Some(c) = container {
            if self.h.in_old(c) && self.in_to(new_idx) {
                self.new_remembered.insert(c);
            }
        }
    }

    fn scan_object(&mut self, idx: usize) {
        let mut slots = Vec::new();
        self.h.for_each_ref_slot(idx, |s| slots.push(s));
        let container = if self.h.in_old(idx) { Some(idx) } else { None };
        for s in slots {
            self.update_slot(s, container);
        }
    }
}

pub(crate) fn scavenge(h: &mut VolatileHeap, extra_roots: &[Ref]) -> GcResult {
    let from = h.from_space();
    let (from_start, from_end) = (from.start, from.end);
    let to_start = h.to_space().start;
    let mut s = Scavenger {
        h,
        from_start,
        from_end,
        to_start,
        to_top: to_start,
        promoted_queue: Vec::new(),
        promoted: 0,
        relocations: HashMap::new(),
        new_remembered: HashSet::new(),
        survivors: 0,
    };

    // Roots: the handle table.
    let mut handle_slots = Vec::new();
    s.h.handles.for_each_slot(|r| handle_slots.push(*r));
    let mut updated_handles = Vec::new();
    for r in handle_slots {
        let new = if r.is_volatile() {
            let idx = r.addr() as usize / WORD;
            if s.in_from(idx) {
                let d = s.evacuate(idx);
                r.with_addr((d * WORD) as u64)
            } else {
                r
            }
        } else {
            r
        };
        updated_handles.push(new);
    }
    let mut it = updated_handles.into_iter();
    s.h.handles
        .for_each_slot(|r| *r = it.next().expect("handle count changed mid-gc"));

    // Roots: caller-supplied refs (e.g. NVM-resident pointers to DRAM).
    for &r in extra_roots {
        if r.is_volatile() {
            let idx = r.addr() as usize / WORD;
            if s.in_from(idx) {
                s.evacuate(idx);
            }
        }
    }

    // Roots: old objects recorded by the write barrier.
    let remembered: Vec<usize> = s.h.remembered.iter().copied().collect();
    for c in remembered {
        s.scan_object(c);
    }

    // Cheney scan of to-space plus the promoted queue.
    let mut scan = to_start;
    loop {
        let mut progressed = false;
        while scan < s.to_top {
            let words = s.h.object_words(scan);
            s.scan_object(scan);
            scan += words;
            progressed = true;
        }
        while let Some(p) = s.promoted_queue.pop() {
            s.scan_object(p);
            progressed = true;
        }
        if !progressed {
            break;
        }
    }

    let to_top = s.to_top;
    let promoted = s.promoted;
    let survivors = s.survivors;
    let relocations = std::mem::take(&mut s.relocations);
    let new_remembered = std::mem::take(&mut s.new_remembered);

    h.remembered = new_remembered;
    h.from_is_a = !h.from_is_a;
    h.young_top = to_top;
    h.stats.young_gcs += 1;

    GcResult {
        kind: GcKind::Young,
        relocations,
        promoted,
        survivors,
    }
}

#[cfg(test)]
mod tests {
    use crate::{VolatileHeap, VolatileHeapConfig};
    use espresso_object::FieldDesc;

    #[test]
    fn cycles_survive_scavenge() {
        let mut h = VolatileHeap::new(VolatileHeapConfig::small());
        let k = h.register_instance(
            "N",
            vec![FieldDesc::prim("v"), FieldDesc::reference("next")],
        );
        let a = h.alloc_instance(k).unwrap();
        let ra = h.add_root(a);
        let b = h.alloc_instance(k).unwrap();
        let a = h.root(ra).unwrap();
        h.set_field(a, 0, 1);
        h.set_field(b, 0, 2);
        h.set_field_ref(a, 1, b);
        h.set_field_ref(b, 1, a);
        h.collect_young(&[]);
        let a = h.root(ra).unwrap();
        let b = h.field_ref(a, 1);
        assert_eq!(h.field(b, 0), 2);
        assert_eq!(h.field_ref(b, 1), a);
    }

    #[test]
    fn garbage_is_dropped() {
        let mut h = VolatileHeap::new(VolatileHeapConfig::small());
        let k = h.register_instance("G", vec![FieldDesc::prim("v")]);
        for _ in 0..50 {
            h.alloc_instance(k).unwrap();
        }
        let r = h.collect_young(&[]);
        assert_eq!(r.survivors, 0);
        let (young_used, _) = h.used_words();
        assert_eq!(young_used, 0);
    }

    #[test]
    fn repeated_survival_promotes() {
        let mut h = VolatileHeap::new(VolatileHeapConfig::small());
        let k = h.register_instance("P", vec![FieldDesc::prim("v")]);
        let a = h.alloc_instance(k).unwrap();
        let root = h.add_root(a);
        let mut promoted_total = 0;
        for _ in 0..5 {
            promoted_total += h.collect_young(&[]).promoted;
        }
        assert!(promoted_total >= 1);
        let a = h.root(root).unwrap();
        let idx = h.word_index(a);
        assert!(h.in_old(idx));
    }

    #[test]
    fn object_arrays_are_traced() {
        let mut h = VolatileHeap::new(VolatileHeapConfig::small());
        let k = h.register_instance("E", vec![FieldDesc::prim("v")]);
        let ak = h.register_obj_array("E");
        let arr = h.alloc_array(ak, 4).unwrap();
        let root = h.add_root(arr);
        for i in 0..4 {
            let e = h.alloc_instance(k).unwrap();
            h.set_field(e, 0, i as u64 * 10);
            let arr = h.root(root).unwrap();
            h.array_set_ref(arr, i, e);
        }
        h.collect_young(&[]);
        let arr = h.root(root).unwrap();
        for i in 0..4 {
            let e = h.array_get_ref(arr, i);
            assert_eq!(h.field(e, 0), i as u64 * 10);
        }
    }
}
