//! Property tests: random object graphs survive volatile collections with
//! structure and payloads intact.

use espresso_object::FieldDesc;
use espresso_runtime::{VolatileHeap, VolatileHeapConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn random_graphs_survive_collections(
        edges in proptest::collection::vec((0u8..30, 0u8..30), 0..60),
        churn in 0usize..400,
        full in any::<bool>(),
    ) {
        let mut h = VolatileHeap::new(VolatileHeapConfig::small());
        let k = h.register_instance("N", vec![FieldDesc::prim("id"), FieldDesc::reference("edge")]);
        // 30 nodes, each pinned by a handle so we can check them all.
        let handles: Vec<_> = (0..30u64)
            .map(|i| {
                let n = h.alloc_instance(k).unwrap();
                h.set_field(n, 0, i);
                h.add_root(n)
            })
            .collect();
        for &(a, b) in &edges {
            let from = h.root(handles[a as usize]).unwrap();
            let to = h.root(handles[b as usize]).unwrap();
            h.set_field_ref(from, 1, to);
        }
        // Garbage churn (may trigger young GCs), then an explicit GC.
        for _ in 0..churn {
            h.alloc_instance(k).unwrap();
        }
        if full {
            h.collect_full(&[]).unwrap();
        } else {
            h.collect_young(&[]);
        }
        // Payloads survive, and the *last* declared edge per source is in
        // place and points at the right target.
        for (i, &hd) in handles.iter().enumerate() {
            let n = h.root(hd).unwrap();
            prop_assert_eq!(h.field(n, 0), i as u64);
        }
        let mut last_edge = std::collections::HashMap::new();
        for &(a, b) in &edges {
            last_edge.insert(a, b);
        }
        for (&a, &b) in &last_edge {
            let from = h.root(handles[a as usize]).unwrap();
            let e = h.field_ref(from, 1);
            prop_assert!(!e.is_null());
            prop_assert_eq!(h.field(e, 0), b as u64);
        }
    }

    #[test]
    fn arrays_keep_contents_through_promotion(values in proptest::collection::vec(any::<u64>(), 1..60)) {
        let mut h = VolatileHeap::new(VolatileHeapConfig::small());
        let pk = h.register_prim_array();
        let arr = h.alloc_array(pk, values.len()).unwrap();
        let root = h.add_root(arr);
        for (i, v) in values.iter().enumerate() {
            h.array_set(arr, i, *v);
        }
        for _ in 0..6 {
            h.collect_young(&[]); // enough survivals to promote
        }
        let arr = h.root(root).unwrap();
        let (young_used, old_used) = h.used_words();
        prop_assert_eq!(young_used, 0, "promoted array left the young gen");
        prop_assert!(old_used > 0);
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(h.array_get(arr, i), *v);
        }
    }
}
