//! The espresso-server binary: boots a [`ShardedHeap`]-backed server and
//! serves until a `SHUTDOWN` opcode (or SIGTERM-by-socket via a client)
//! drains it.
//!
//! ```text
//! espresso-server [--addr 127.0.0.1:7878] [--shards 4] [--shard-mb 16]
//!                 [--dir PATH] [--base kv] [--max-pending 64]
//!                 [--commit-timeout-ms 1000] [--name-table 8192]
//! ```
//!
//! With no `--dir` the server runs on a temp heap that is removed on
//! exit; pass a directory for persistence across restarts. The bound
//! address is printed as `listening on ADDR` once accepting (port 0
//! picks a free port).
//!
//! [`ShardedHeap`]: espresso_core::ShardedHeap

use std::process::ExitCode;
use std::time::Duration;

use espresso_server::server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: espresso-server [--addr A] [--shards N] [--shard-mb MB] [--dir PATH] \
         [--base NAME] [--max-pending N] [--commit-timeout-ms MS] [--name-table ENTRIES]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => config.addr = value(),
            "--shards" => config.shards = parse(&value()),
            "--shard-mb" => config.shard_bytes = parse::<usize>(&value()) << 20,
            "--dir" => config.dir = Some(value().into()),
            "--base" => config.base = value(),
            "--max-pending" => config.max_pending = parse(&value()),
            "--commit-timeout-ms" => {
                config.commit_timeout = Duration::from_millis(parse(&value()));
            }
            "--name-table" => config.name_table_capacity = parse(&value()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let handle = match Server::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("espresso-server: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", handle.addr());
    handle.wait();
    println!("espresso-server: clean shutdown");
    ExitCode::SUCCESS
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric argument: {s}");
        std::process::exit(2);
    })
}
