//! Load generator for espresso-server: N connections, read/write mix,
//! zipfian keys, latency percentiles, optional read-your-writes check.
//!
//! ```text
//! loadgen --addr HOST:PORT [--conns 4] [--ops 10000] [--read-pct 70]
//!         [--keys 256] [--value-len 64] [--zipf 0.99] [--seed N]
//!         [--scan-mix P] [--scan-limit N] [--check] [--shutdown]
//! ```
//!
//! `--scan-mix P` makes P% of ops `SCAN` requests (spread across the
//! server's shards, `--scan-limit` entries per page); scans get their
//! own latency percentiles plus a total result count, since a scan's
//! cost scales with how much it returns.
//!
//! `--check` verifies every read against a local model (per-connection
//! disjoint keyspaces make this exact even under concurrency) and exits
//! non-zero on any mismatch — this is the CI smoke check. `--check`
//! assumes the keyspace is fresh (keys `c{conn}-k{i}` unset at start).
//! `--shutdown` sends the `SHUTDOWN` opcode after the run so a scripted
//! server exits cleanly.

use std::net::ToSocketAddrs;
use std::process::ExitCode;

use espresso_server::client::Client;
use espresso_server::load::{run_load, LoadConfig};

fn usage() -> ! {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--conns N] [--ops N] [--read-pct P] [--keys N] \
         [--value-len N] [--zipf THETA] [--seed N] [--scan-mix P] [--scan-limit N] \
         [--check] [--shutdown]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut config = LoadConfig::default();
    let mut addr_given = false;
    let mut shutdown_after = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => {
                let addr = value();
                config.addr = addr
                    .to_socket_addrs()
                    .ok()
                    .and_then(|mut it| it.next())
                    .unwrap_or_else(|| {
                        eprintln!("bad address: {addr}");
                        std::process::exit(2);
                    });
                addr_given = true;
            }
            "--conns" => config.conns = parse(&value()),
            "--ops" => config.ops = parse(&value()),
            "--read-pct" => config.read_pct = parse(&value()),
            "--keys" => config.keys_per_conn = parse(&value()),
            "--value-len" => config.value_len = parse(&value()),
            "--zipf" => config.zipf_theta = parse(&value()),
            "--seed" => config.seed = parse(&value()),
            "--scan-mix" => config.scan_pct = parse(&value()),
            "--scan-limit" => config.scan_limit = parse(&value()),
            "--check" => config.check = true,
            "--shutdown" => shutdown_after = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    if !addr_given {
        usage();
    }
    let report = match run_load(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "ops_done={} busy={} errors={} check_failures={} elapsed_ms={} ops_per_sec={:.0} \
         p50_us={} p99_us={}",
        report.ops_done,
        report.busy,
        report.errors,
        report.check_failures,
        report.elapsed.as_millis(),
        report.ops_per_sec(),
        report.p50_us,
        report.p99_us,
    );
    if config.scan_pct > 0 {
        println!(
            "scans_done={} scan_items={} scan_p50_us={} scan_p99_us={}",
            report.scans_done, report.scan_items, report.scan_p50_us, report.scan_p99_us,
        );
    }
    if shutdown_after {
        match Client::connect(config.addr).and_then(|mut c| {
            c.shutdown()
                .map_err(|e| std::io::Error::other(e.to_string()))
        }) {
            Ok(()) => println!("shutdown acknowledged"),
            Err(e) => {
                eprintln!("loadgen: shutdown failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if report.errors > 0 || report.check_failures > 0 {
        eprintln!("loadgen: FAILED (errors or check failures)");
        return ExitCode::FAILURE;
    }
    println!("loadgen: OK");
    ExitCode::SUCCESS
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric argument: {s}");
        std::process::exit(2);
    })
}
