//! A small blocking client for the wire protocol: one request in flight
//! per call, plus explicit pipelining helpers for tests.

use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{self, ProtocolError, Request, Response, ScanItem, Status, TxnOp};

/// Result of one [`Client::scan`] call: the key/value pairs in key
/// order, and whether the server stopped early (`limit` or response
/// byte budget reached) — if so, resume with `start` set just past the
/// last returned key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanPage {
    /// Key/value pairs, in ascending key order.
    pub items: Vec<ScanItem>,
    /// The range was not exhausted: more entries may follow the last
    /// returned key.
    pub truncated: bool,
}

/// A blocking connection to an espresso-server.
///
/// Every helper sends one request and reads one response. For pipelining
/// (several requests on the wire before any response is read), use
/// [`send`](Self::send) repeatedly followed by matching
/// [`recv`](Self::recv) calls — the server answers strictly in order.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
}

/// Role-named alias for [`Client`]: external tooling (the workload
/// harness's `server` backend, scripts embedding the crate) reaches the
/// blocking key-value client under this name.
pub type KvClient = Client;

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Writes one request frame without waiting for the response
    /// (pipelining). Pair with [`recv`](Self::recv).
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn send(&mut self, req: &Request) -> Result<(), ProtocolError> {
        protocol::write_frame(&mut self.writer, &protocol::encode_request(req))
    }

    /// Reads one response frame.
    ///
    /// # Errors
    ///
    /// Socket errors; [`ProtocolError::Malformed`] on a bad response
    /// frame; an unexpected EOF surfaces as `Malformed`.
    pub fn recv(&mut self) -> Result<Response, ProtocolError> {
        match protocol::read_frame(&mut self.reader)? {
            Some(body) => protocol::decode_response(&body),
            None => Err(ProtocolError::Malformed(
                "connection closed while awaiting a response",
            )),
        }
    }

    /// One round trip: send `req`, read its response.
    ///
    /// # Errors
    ///
    /// See [`send`](Self::send) and [`recv`](Self::recv).
    pub fn request(&mut self, req: &Request) -> Result<Response, ProtocolError> {
        self.send(req)?;
        self.recv()
    }

    /// `PING` → true on an `OK` answer.
    ///
    /// # Errors
    ///
    /// Protocol/socket errors.
    pub fn ping(&mut self) -> Result<bool, ProtocolError> {
        Ok(self.request(&Request::Ping)?.status == Status::Ok)
    }

    /// `GET key` → `Some(value)`, or `None` when the key is unset.
    ///
    /// # Errors
    ///
    /// Protocol/socket errors; a non-`OK`, non-`NOT_FOUND` status.
    pub fn get(&mut self, key: &str) -> Result<Option<Vec<u8>>, ProtocolError> {
        let resp = self.request(&Request::Get {
            key: key.to_string(),
        })?;
        match resp.status {
            Status::Ok => Ok(Some(resp.payload)),
            Status::NotFound => Ok(None),
            other => Err(unexpected(other, &resp)),
        }
    }

    /// `SET key value`, acknowledged durable.
    ///
    /// # Errors
    ///
    /// Protocol/socket errors; a non-`OK` status (including `BUSY` under
    /// backpressure — retryable).
    pub fn set(&mut self, key: &str, value: &[u8]) -> Result<(), ProtocolError> {
        let resp = self.request(&Request::Set {
            key: key.to_string(),
            value: value.to_vec(),
        })?;
        match resp.status {
            Status::Ok => Ok(()),
            other => Err(unexpected(other, &resp)),
        }
    }

    /// `DEL key` → true when the key existed.
    ///
    /// # Errors
    ///
    /// Protocol/socket errors; a non-`OK`, non-`NOT_FOUND` status.
    pub fn del(&mut self, key: &str) -> Result<bool, ProtocolError> {
        let resp = self.request(&Request::Del {
            key: key.to_string(),
        })?;
        match resp.status {
            Status::Ok => Ok(true),
            Status::NotFound => Ok(false),
            other => Err(unexpected(other, &resp)),
        }
    }

    /// `FGET key index` → `Some(u64)` from the entry's typed field slot.
    ///
    /// # Errors
    ///
    /// Protocol/socket errors; a non-`OK`, non-`NOT_FOUND` status.
    pub fn fget(&mut self, key: &str, index: u8) -> Result<Option<u64>, ProtocolError> {
        let resp = self.request(&Request::FGet {
            key: key.to_string(),
            index,
        })?;
        match resp.status {
            Status::Ok => {
                if resp.payload.len() != 8 {
                    return Err(ProtocolError::Malformed("FGET payload is not 8 bytes"));
                }
                let mut b = [0u8; 8];
                b.copy_from_slice(&resp.payload);
                Ok(Some(u64::from_be_bytes(b)))
            }
            Status::NotFound => Ok(None),
            other => Err(unexpected(other, &resp)),
        }
    }

    /// `FSET key index value`, acknowledged durable.
    ///
    /// # Errors
    ///
    /// Protocol/socket errors; a non-`OK` status.
    pub fn fset(&mut self, key: &str, index: u8, value: u64) -> Result<(), ProtocolError> {
        let resp = self.request(&Request::FSet {
            key: key.to_string(),
            index,
            value,
        })?;
        match resp.status {
            Status::Ok => Ok(()),
            other => Err(unexpected(other, &resp)),
        }
    }

    /// `TXN ops`: all-or-nothing; every key must route to one shard.
    ///
    /// # Errors
    ///
    /// Protocol/socket errors; a non-`OK` status (`ERR` for cross-shard
    /// key sets).
    pub fn txn(&mut self, ops: Vec<TxnOp>) -> Result<(), ProtocolError> {
        let resp = self.request(&Request::Txn { ops })?;
        match resp.status {
            Status::Ok => Ok(()),
            other => Err(unexpected(other, &resp)),
        }
    }

    /// `SCAN shard start end limit`: the shard's keys in
    /// `start..end` (lexicographic; an empty string is unbounded on that
    /// side), at most `limit` entries. Keys live on the shard their
    /// bytes hash to — to scan a range of the whole keyspace, issue one
    /// `SCAN` per shard and merge.
    ///
    /// # Errors
    ///
    /// Protocol/socket errors; a non-`OK` status (`ERR` for an
    /// out-of-range shard).
    pub fn scan(
        &mut self,
        shard: u16,
        start: &str,
        end: &str,
        limit: u32,
    ) -> Result<ScanPage, ProtocolError> {
        let resp = self.request(&Request::Scan {
            shard,
            start: start.to_string(),
            end: end.to_string(),
            limit,
        })?;
        match resp.status {
            Status::Ok => {
                let (truncated, items) = protocol::decode_scan_items(&resp.payload)?;
                Ok(ScanPage { items, truncated })
            }
            other => Err(unexpected(other, &resp)),
        }
    }

    /// `STATS` → the server's `key=value` text block.
    ///
    /// # Errors
    ///
    /// Protocol/socket errors; a non-`OK` status.
    pub fn stats(&mut self) -> Result<String, ProtocolError> {
        let resp = self.request(&Request::Stats)?;
        match resp.status {
            Status::Ok => Ok(String::from_utf8_lossy(&resp.payload).into_owned()),
            other => Err(unexpected(other, &resp)),
        }
    }

    /// `FLUSHCTL`: pause or resume every shard's flush pipeline (admin).
    ///
    /// # Errors
    ///
    /// Protocol/socket errors; a non-`OK` status.
    pub fn flushctl(&mut self, pause: bool) -> Result<(), ProtocolError> {
        let resp = self.request(&Request::FlushCtl { pause })?;
        match resp.status {
            Status::Ok => Ok(()),
            other => Err(unexpected(other, &resp)),
        }
    }

    /// `SHUTDOWN`: asks the server to drain and exit; the `OK` reply
    /// arrives before the server stops.
    ///
    /// # Errors
    ///
    /// Protocol/socket errors; a non-`OK` status.
    pub fn shutdown(&mut self) -> Result<(), ProtocolError> {
        let resp = self.request(&Request::Shutdown)?;
        match resp.status {
            Status::Ok => Ok(()),
            other => Err(unexpected(other, &resp)),
        }
    }
}

fn unexpected(status: Status, resp: &Response) -> ProtocolError {
    let detail = String::from_utf8_lossy(&resp.payload).into_owned();
    ProtocolError::Io(std::io::Error::other(format!(
        "server answered {status:?}: {detail}"
    )))
}
