//! espresso-server: a networked serving front end over
//! [`espresso_core::ShardedHeap`].
//!
//! This crate turns the embedded persistent heap into a small network
//! service: a TCP server speaking a length-prefixed binary protocol
//! (`GET`/`SET`/`DEL` on raw values, `FGET`/`FSET` on typed u64 fields,
//! multi-key `TXN`, per-shard key-range `SCAN` served off a persistent
//! secondary index, plus `PING`/`STATS` and admin opcodes), a blocking
//! [`client::Client`], and a load generator. The full wire format is
//! specified in `docs/PROTOCOL.md`; the serving model (group commit
//! across connections, lock-free reads, bounded backpressure) is
//! documented on the [`server`] module.
//!
//! ```no_run
//! use espresso_server::client::Client;
//! use espresso_server::server::{Server, ServerConfig};
//!
//! let handle = Server::start(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client.set("greeting", b"hello over the wire").unwrap();
//! assert_eq!(client.get("greeting").unwrap().as_deref(), Some(&b"hello over the wire"[..]));
//! handle.stop_and_wait();
//! ```

pub mod client;
pub mod load;
pub mod protocol;
pub mod server;

pub use client::{Client, KvClient, ScanPage};
