//! Load generation over the wire protocol: N client connections, a
//! configurable read/write/scan mix, zipfian key popularity, latency
//! percentiles (scans tracked separately, with result counts), and an
//! optional read-your-writes `check` mode.
//!
//! Used by the `loadgen` binary and by the bench harness's
//! `server_throughput` cell. Self-contained RNG and zipf sampler — the
//! vendored `rand` shim is deliberately minimal.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::client::Client;
use crate::protocol::{Request, Status};

/// Parameters for [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent client connections.
    pub conns: usize,
    /// Total operations across all connections.
    pub ops: usize,
    /// Percentage of operations that are reads (0–100).
    pub read_pct: u8,
    /// Keys per connection (each connection owns a disjoint keyspace, so
    /// read-your-writes is verifiable under concurrency).
    pub keys_per_conn: usize,
    /// Value size in bytes for writes.
    pub value_len: usize,
    /// Zipf exponent for key popularity (0 = uniform).
    pub zipf_theta: f64,
    /// Verify read-your-writes against a local model; count mismatches
    /// as check failures.
    pub check: bool,
    /// RNG seed (per-connection streams derive from it).
    pub seed: u64,
    /// Percentage of operations that are `SCAN`s (0–100). Scans carve
    /// their share out of the write fraction: reads stay at `read_pct`
    /// of all ops. 0 keeps the op stream identical to pre-scan loadgen.
    pub scan_pct: u8,
    /// `SCAN` page limit per request.
    pub scan_limit: u32,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            conns: 4,
            ops: 10_000,
            read_pct: 70,
            keys_per_conn: 256,
            value_len: 64,
            zipf_theta: 0.99,
            check: false,
            seed: 0x5eed_e59e_e550,
            scan_pct: 0,
            scan_limit: 64,
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Operations that completed with a definitive answer (`OK` or
    /// `NOT_FOUND`).
    pub ops_done: u64,
    /// Operations refused or unacknowledged under backpressure.
    pub busy: u64,
    /// Error responses.
    pub errors: u64,
    /// Check-mode verification failures (0 when `check` is off).
    pub check_failures: u64,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Median per-op latency, microseconds (scans excluded — they are
    /// a different animal and get their own percentiles).
    pub p50_us: u64,
    /// 99th-percentile per-op latency, microseconds.
    pub p99_us: u64,
    /// `SCAN` requests that completed (also counted in `ops_done`).
    pub scans_done: u64,
    /// Total entries returned across all scans — the result-count side
    /// of scan latency (a scan that returns 4096 entries and one that
    /// returns 3 are not comparable without it).
    pub scan_items: u64,
    /// Median scan latency, microseconds (0 when no scans ran).
    pub scan_p50_us: u64,
    /// 99th-percentile scan latency, microseconds.
    pub scan_p99_us: u64,
}

impl LoadReport {
    /// Completed operations per second of wall-clock.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.ops_done as f64 / self.elapsed.as_secs_f64()
    }
}

/// xorshift64* — tiny, deterministic, good enough for key/mix draws.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    /// Uniform in `[0, n)`.
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipfian sampler over `[0, n)` via a precomputed CDF and binary
/// search; `theta = 0` degenerates to uniform.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, theta: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 1..=n {
            total += 1.0 / (i as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }
    fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.unit();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[derive(Default)]
struct Totals {
    ops_done: AtomicU64,
    busy: AtomicU64,
    errors: AtomicU64,
    check_failures: AtomicU64,
    scans_done: AtomicU64,
    scan_items: AtomicU64,
}

/// Runs the configured load and aggregates per-connection results.
///
/// Each connection owns keys `c{conn}-k{i}`, so every read observes only
/// that connection's writes and `check` mode can assert exact
/// read-your-writes. A `BUSY` write leaves the key's expected value
/// *uncertain* (applied-but-unacknowledged is allowed) until the next
/// acknowledged write.
///
/// # Errors
///
/// Connection setup failure on any worker.
pub fn run_load(config: &LoadConfig) -> std::io::Result<LoadReport> {
    let totals = Arc::new(Totals::default());
    let mut latencies: Vec<u64> = Vec::new();
    let mut scan_latencies: Vec<u64> = Vec::new();
    let started = Instant::now();
    let ops_per_conn = config.ops.div_ceil(config.conns.max(1));
    type ConnResult = std::io::Result<(Vec<u64>, Vec<u64>)>;
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for conn in 0..config.conns {
            let totals = Arc::clone(&totals);
            handles.push(scope.spawn(move || run_conn(config, conn, ops_per_conn, &totals)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("load worker"))
            .collect()
    });
    for r in results {
        let (ops, scans) = r?;
        latencies.extend(ops);
        scan_latencies.extend(scans);
    }
    latencies.sort_unstable();
    scan_latencies.sort_unstable();
    let pct = |sorted: &[u64], p: f64| -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() as f64 * p).ceil() as usize).saturating_sub(1);
        sorted[idx.min(sorted.len() - 1)]
    };
    Ok(LoadReport {
        ops_done: totals.ops_done.load(Ordering::Relaxed),
        busy: totals.busy.load(Ordering::Relaxed),
        errors: totals.errors.load(Ordering::Relaxed),
        check_failures: totals.check_failures.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
        p50_us: pct(&latencies, 0.50),
        p99_us: pct(&latencies, 0.99),
        scans_done: totals.scans_done.load(Ordering::Relaxed),
        scan_items: totals.scan_items.load(Ordering::Relaxed),
        scan_p50_us: pct(&scan_latencies, 0.50),
        scan_p99_us: pct(&scan_latencies, 0.99),
    })
}

/// The expected value under `check`: a deterministic function of the key
/// and its write version, padded/truncated to `value_len`.
fn check_value(key: &str, version: u64, value_len: usize) -> Vec<u8> {
    let mut v = format!("v{version}:{key}:").into_bytes();
    while v.len() < value_len {
        v.push(b'a' + (v.len() % 26) as u8);
    }
    v.truncate(value_len.max(1));
    v
}

fn run_conn(
    config: &LoadConfig,
    conn: usize,
    ops: usize,
    totals: &Totals,
) -> std::io::Result<(Vec<u64>, Vec<u64>)> {
    let mut client = Client::connect(config.addr)?;
    let mut rng = Rng::new(config.seed ^ (conn as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let zipf = Zipf::new(config.keys_per_conn.max(1), config.zipf_theta);
    // Shards are independent scan domains; learn the count once so scan
    // ops can spread across them.
    let shards = if config.scan_pct > 0 {
        let stats = client
            .stats()
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        stats
            .lines()
            .find_map(|l| l.strip_prefix("shards=")?.trim().parse::<usize>().ok())
            .unwrap_or(1)
            .max(1)
    } else {
        1
    };
    // Expected value per key index: None = never written or deleted;
    // an entry flagged uncertain (BUSY write) is skipped by the checker.
    let mut model: HashMap<usize, (Vec<u8>, bool)> = HashMap::new();
    let mut versions: HashMap<usize, u64> = HashMap::new();
    let mut latencies = Vec::with_capacity(ops);
    let mut scan_latencies = Vec::new();
    for _ in 0..ops {
        let key_idx = zipf.sample(&mut rng);
        let key = format!("c{conn}-k{key_idx}");
        // One roll decides the op kind: [0, scan_pct) scans, the next
        // read_pct band reads, the rest writes — so `scan_pct: 0` draws
        // the exact op stream pre-scan loadgen drew from the same seed.
        let roll = rng.below(100);
        let is_scan = roll < usize::from(config.scan_pct.min(100));
        let is_read = !is_scan
            && roll < usize::from(config.scan_pct.min(100)) + usize::from(config.read_pct.min(100));
        if is_scan {
            let shard = rng.below(shards) as u16;
            let op_started = Instant::now();
            let got = client.scan(shard, "", "", config.scan_limit.max(1));
            scan_latencies.push(op_started.elapsed().as_micros() as u64);
            match got {
                Ok(page) => {
                    totals.ops_done.fetch_add(1, Ordering::Relaxed);
                    totals.scans_done.fetch_add(1, Ordering::Relaxed);
                    totals
                        .scan_items
                        .fetch_add(page.items.len() as u64, Ordering::Relaxed);
                }
                Err(_) => {
                    totals.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            continue;
        }
        let op_started = Instant::now();
        if is_read {
            let got = client.get(&key);
            latencies.push(op_started.elapsed().as_micros() as u64);
            match got {
                Ok(value) => {
                    totals.ops_done.fetch_add(1, Ordering::Relaxed);
                    if config.check {
                        let expected = model.get(&key_idx);
                        let ok = match (expected, &value) {
                            // Uncertain entries accept any outcome.
                            (Some((_, true)), _) => true,
                            (Some((want, false)), Some(got)) => want == got,
                            (Some((_, false)), None) => false,
                            (None, None) => true,
                            // A never-written key must not exist (keyspaces
                            // are disjoint per connection).
                            (None, Some(_)) => false,
                        };
                        if !ok {
                            totals.check_failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Err(_) => {
                    totals.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        } else {
            let version = versions.entry(key_idx).or_insert(0);
            *version += 1;
            let value = check_value(&key, *version, config.value_len);
            let resp = client.request(&Request::Set {
                key: key.clone(),
                value: value.clone(),
            });
            latencies.push(op_started.elapsed().as_micros() as u64);
            match resp {
                Ok(resp) => match resp.status {
                    Status::Ok => {
                        totals.ops_done.fetch_add(1, Ordering::Relaxed);
                        model.insert(key_idx, (value, false));
                    }
                    Status::Busy => {
                        totals.busy.fetch_add(1, Ordering::Relaxed);
                        // Applied-or-not is unknown; stop asserting this
                        // key until the next acknowledged write.
                        model.insert(key_idx, (value, true));
                    }
                    _ => {
                        totals.errors.fetch_add(1, Ordering::Relaxed);
                    }
                },
                Err(_) => {
                    totals.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    Ok((latencies, scan_latencies))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `--seed` pins the whole op stream: key choices, read/write mix,
    /// and check values are pure functions of (seed, conn index).
    #[test]
    fn seeded_draws_are_deterministic() {
        let draw = |seed: u64| -> Vec<(usize, bool)> {
            let mut rng = Rng::new(seed);
            let zipf = Zipf::new(64, 0.99);
            (0..256)
                .map(|_| (zipf.sample(&mut rng), rng.below(100) < 70))
                .collect()
        };
        assert_eq!(draw(42), draw(42));
        // Rng::new forces the low bit, so pick seeds that differ above it.
        assert_ne!(draw(42), draw(44));
        assert_eq!(check_value("c0-k7", 3, 32), check_value("c0-k7", 3, 32));
    }

    /// Per-connection streams derived from one seed must not collide —
    /// identical streams would hide read-your-writes races.
    #[test]
    fn connection_streams_are_distinct() {
        let stream = |conn: u64| -> Vec<u64> {
            let mut rng = Rng::new(9 ^ conn.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            (0..64).map(|_| rng.next()).collect()
        };
        assert_ne!(stream(0), stream(1));
        assert_ne!(stream(1), stream(2));
    }

    /// Zipfian popularity with a high theta concentrates on low indices;
    /// theta 0 degenerates to (roughly) uniform.
    #[test]
    fn zipf_skew_shapes_the_key_distribution() {
        let hits = |theta: f64| -> usize {
            let mut rng = Rng::new(7);
            let zipf = Zipf::new(100, theta);
            (0..2000).filter(|_| zipf.sample(&mut rng) < 10).count()
        };
        let skewed = hits(0.99);
        let uniform = hits(0.0);
        assert!(skewed > 1000, "theta=0.99 gave only {skewed}/2000 hot hits");
        assert!(uniform < 500, "theta=0 gave {uniform}/2000 hot hits");
    }
}
