//! The espresso wire protocol: length-prefixed binary frames over TCP.
//!
//! This module is the single source of truth for the encoding; the
//! human-readable spec in `docs/PROTOCOL.md` is written against it and
//! precise enough to implement a client from. The shape, in one line:
//!
//! ```text
//! request  = u32 len | u8 version (=1) | u8 opcode | payload
//! response = u32 len | u8 status  | payload
//! ```
//!
//! `len` is big-endian and counts everything *after* itself (so version +
//! opcode + payload for requests, status + payload for responses). All
//! integers are big-endian. Strings (keys) are `u16 len | bytes` and must
//! be UTF-8; values are raw bytes as `u32 len | bytes`.
//!
//! Decoding is **total**: any byte sequence either decodes or returns a
//! [`ProtocolError`] — never a panic, never an out-of-bounds read — and
//! frames larger than [`MAX_FRAME`] are refused before their payload is
//! buffered, so a hostile peer cannot balloon server memory. The
//! `tests/protocol_props.rs` property suite holds the codec to that.

use std::io::{self, Read, Write};

/// The one protocol version this build speaks; requests carrying any
/// other version byte are answered with [`Status::BadRequest`].
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard ceiling on a frame's `len` field (16 MiB). Covers the largest
/// legal value (1 MiB) with generous headroom; anything above is refused
/// at the length prefix, before allocation.
pub const MAX_FRAME: u32 = 16 << 20;

/// Largest value accepted in a `SET` (1 MiB).
pub const MAX_VALUE: usize = 1 << 20;

/// Largest key accepted (4 KiB; keys are routing hashes and root-table
/// names, not payloads).
pub const MAX_KEY: usize = 4 << 10;

/// Typed field slots per key: every key's entry carries this many u64
/// fields addressable by `FGET`/`FSET` index.
pub const NUM_FIELDS: usize = 8;

/// Most operations accepted in one `TXN`. The server applies a
/// transaction through a bounded undo log, so the op count is capped at
/// the wire (a larger count is a malformed frame).
pub const MAX_TXN_OPS: usize = 64;

/// Largest `limit` accepted in a `SCAN` (and so the most entries one
/// `SCAN` response can carry). A limit of 0 or above this is malformed.
pub const MAX_SCAN: usize = 4096;

/// Byte budget for the entries in one `SCAN` response. The server stops
/// adding entries (and sets the truncated flag) before the encoded
/// key/value list would exceed this, so a scan over large values can
/// never approach [`MAX_FRAME`].
pub const MAX_SCAN_BYTES: usize = 4 << 20;

/// Request opcodes (the byte after the version).
pub mod opcode {
    /// Liveness probe; empty payload, empty `OK` reply.
    pub const PING: u8 = 0x01;
    /// Read a key's value: `key`.
    pub const GET: u8 = 0x02;
    /// Write a key's value: `key value`.
    pub const SET: u8 = 0x03;
    /// Delete a key: `key`.
    pub const DEL: u8 = 0x04;
    /// Read typed field `index` of a key: `key u8(index)`.
    pub const FGET: u8 = 0x05;
    /// Write typed field `index` of a key: `key u8(index) u64(value)`.
    pub const FSET: u8 = 0x06;
    /// Multi-key transaction: `u16 count` (at most [`MAX_TXN_OPS`]),
    /// then sub-ops. All keys must route to one shard.
    ///
    /// [`MAX_TXN_OPS`]: super::MAX_TXN_OPS
    pub const TXN: u8 = 0x07;
    /// Server statistics; empty payload, UTF-8 text reply.
    pub const STATS: u8 = 0x08;
    /// Admin: pause/resume the flush pipeline: `u8 (1 = pause)`.
    pub const FLUSHCTL: u8 = 0x09;
    /// Admin: drain, final-commit, and stop the server.
    pub const SHUTDOWN: u8 = 0x0A;
    /// Ordered key-range scan over one shard:
    /// `u16 shard | key? start | key? end | u32 limit` (`key?` is a key
    /// whose length may be 0, meaning unbounded on that side).
    pub const SCAN: u8 = 0x0B;
}

/// Sub-opcodes inside a `TXN` payload.
pub mod txnop {
    /// `key value`
    pub const SET: u8 = 0x01;
    /// `key`
    pub const DEL: u8 = 0x02;
    /// `key u8(index) u64(value)`
    pub const FSET: u8 = 0x03;
}

/// Response status bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success; payload depends on the request.
    Ok = 0x00,
    /// The key has no entry (GET/FGET/DEL of a missing key).
    NotFound = 0x01,
    /// Backpressure: the commit pipeline is lagging and the write was
    /// **not applied**. Retry later.
    Busy = 0x02,
    /// The request was well-formed but failed (payload: UTF-8 reason).
    Err = 0x03,
    /// The request was malformed or unversioned (payload: UTF-8 reason).
    /// The server closes the connection after sending this.
    BadRequest = 0x04,
}

impl Status {
    /// The status for a wire byte, if it names one.
    pub fn from_byte(b: u8) -> Option<Status> {
        match b {
            0x00 => Some(Status::Ok),
            0x01 => Some(Status::NotFound),
            0x02 => Some(Status::Busy),
            0x03 => Some(Status::Err),
            0x04 => Some(Status::BadRequest),
            _ => None,
        }
    }
}

/// One decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Read `key`'s value.
    Get { key: String },
    /// Write `key`'s value (upsert; replies once durable).
    Set { key: String, value: Vec<u8> },
    /// Delete `key` (replies once durable).
    Del { key: String },
    /// Read typed field `index` of `key`.
    FGet { key: String, index: u8 },
    /// Write typed field `index` of `key` (upsert; replies once durable).
    FSet { key: String, index: u8, value: u64 },
    /// Apply `ops` atomically. Every key must route to the same shard —
    /// shards are independent atomicity domains.
    Txn { ops: Vec<TxnOp> },
    /// Scan shard `shard`'s keys in `start..end` order (lexicographic;
    /// an empty bound string is unbounded on that side), returning at
    /// most `limit` key/value pairs. Served off the shard's secondary
    /// index through a lock-free read session.
    Scan {
        /// Shard to scan (shards are scanned independently — a range of
        /// the keyspace is spread across all of them by the routing
        /// hash).
        shard: u16,
        /// Inclusive lower key bound; empty = from the first key.
        start: String,
        /// Exclusive upper key bound; empty = through the last key.
        end: String,
        /// Most entries to return (`1..=MAX_SCAN`).
        limit: u32,
    },
    /// Server statistics snapshot.
    Stats,
    /// Pause (`true`) or resume (`false`) every shard's flush pipeline.
    FlushCtl { pause: bool },
    /// Drain and stop the server.
    Shutdown,
}

/// One operation inside a [`Request::Txn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOp {
    /// Write `key`'s value.
    Set { key: String, value: Vec<u8> },
    /// Delete `key`.
    Del { key: String },
    /// Write typed field `index` of `key`.
    FSet { key: String, index: u8, value: u64 },
}

impl TxnOp {
    /// The op's routing key.
    pub fn key(&self) -> &str {
        match self {
            TxnOp::Set { key, .. } | TxnOp::Del { key } | TxnOp::FSet { key, .. } => key,
        }
    }
}

/// One decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Outcome class.
    pub status: Status,
    /// `GET`: the value bytes. `FGET`: 8 bytes, big-endian u64. `STATS`:
    /// UTF-8 text. `Err`/`BadRequest`: UTF-8 reason. Empty otherwise.
    pub payload: Vec<u8>,
}

impl Response {
    /// An empty-payload response.
    pub fn status(status: Status) -> Response {
        Response {
            status,
            payload: Vec::new(),
        }
    }

    /// An `OK` carrying `payload`.
    pub fn ok(payload: Vec<u8>) -> Response {
        Response {
            status: Status::Ok,
            payload,
        }
    }

    /// An `ERR` carrying a UTF-8 reason.
    pub fn err(reason: impl Into<String>) -> Response {
        Response {
            status: Status::Err,
            payload: reason.into().into_bytes(),
        }
    }

    /// A `BAD_REQUEST` carrying a UTF-8 reason.
    pub fn bad_request(reason: impl Into<String>) -> Response {
        Response {
            status: Status::BadRequest,
            payload: reason.into().into_bytes(),
        }
    }
}

/// Why a frame failed to decode (or arrive).
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying stream failed or closed mid-frame.
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME`] (refused before buffering).
    FrameTooLarge(u32),
    /// The version byte is not [`PROTOCOL_VERSION`].
    BadVersion(u8),
    /// Unknown opcode / status / sub-opcode byte.
    BadOpcode(u8),
    /// The payload is truncated, has trailing garbage, violates a size
    /// bound, or holds non-UTF-8 where a string is required.
    Malformed(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o: {e}"),
            ProtocolError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            ProtocolError::BadVersion(v) => {
                write!(
                    f,
                    "protocol version {v} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            ProtocolError::BadOpcode(b) => write!(f, "unknown opcode byte 0x{b:02x}"),
            ProtocolError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> ProtocolError {
        ProtocolError::Io(e)
    }
}

/// Codec result.
pub type Result<T> = std::result::Result<T, ProtocolError>;

// ---- cursor-based, bounds-checked payload reading ----

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ProtocolError::Malformed("truncated payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(u64::from_be_bytes(w))
    }

    fn key(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        if len > MAX_KEY {
            return Err(ProtocolError::Malformed("key exceeds MAX_KEY"));
        }
        if len == 0 {
            return Err(ProtocolError::Malformed("empty key"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::Malformed("key is not UTF-8"))
    }

    /// A key that may be empty (`SCAN` bounds use the empty string for
    /// "unbounded"); otherwise identical to [`key`](Self::key).
    fn opt_key(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        if len > MAX_KEY {
            return Err(ProtocolError::Malformed("key exceeds MAX_KEY"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::Malformed("key is not UTF-8"))
    }

    fn value(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        if len > MAX_VALUE {
            return Err(ProtocolError::Malformed("value exceeds MAX_VALUE"));
        }
        Ok(self.take(len)?.to_vec())
    }

    fn finish(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed("trailing bytes after payload"))
        }
    }
}

// ---- payload writing ----

fn put_key(out: &mut Vec<u8>, key: &str) {
    debug_assert!(key.len() <= MAX_KEY);
    out.extend_from_slice(&(key.len() as u16).to_be_bytes());
    out.extend_from_slice(key.as_bytes());
}

fn put_value(out: &mut Vec<u8>, value: &[u8]) {
    debug_assert!(value.len() <= MAX_VALUE);
    out.extend_from_slice(&(value.len() as u32).to_be_bytes());
    out.extend_from_slice(value);
}

fn put_txn_op(out: &mut Vec<u8>, op: &TxnOp) {
    match op {
        TxnOp::Set { key, value } => {
            out.push(txnop::SET);
            put_key(out, key);
            put_value(out, value);
        }
        TxnOp::Del { key } => {
            out.push(txnop::DEL);
            put_key(out, key);
        }
        TxnOp::FSet { key, index, value } => {
            out.push(txnop::FSET);
            put_key(out, key);
            out.push(*index);
            out.extend_from_slice(&value.to_be_bytes());
        }
    }
}

/// Encodes a request to its full wire frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut body = vec![PROTOCOL_VERSION];
    match req {
        Request::Ping => body.push(opcode::PING),
        Request::Get { key } => {
            body.push(opcode::GET);
            put_key(&mut body, key);
        }
        Request::Set { key, value } => {
            body.push(opcode::SET);
            put_key(&mut body, key);
            put_value(&mut body, value);
        }
        Request::Del { key } => {
            body.push(opcode::DEL);
            put_key(&mut body, key);
        }
        Request::FGet { key, index } => {
            body.push(opcode::FGET);
            put_key(&mut body, key);
            body.push(*index);
        }
        Request::FSet { key, index, value } => {
            body.push(opcode::FSET);
            put_key(&mut body, key);
            body.push(*index);
            body.extend_from_slice(&value.to_be_bytes());
        }
        Request::Txn { ops } => {
            body.push(opcode::TXN);
            body.extend_from_slice(&(ops.len() as u16).to_be_bytes());
            for op in ops {
                put_txn_op(&mut body, op);
            }
        }
        Request::Scan {
            shard,
            start,
            end,
            limit,
        } => {
            body.push(opcode::SCAN);
            body.extend_from_slice(&shard.to_be_bytes());
            put_key(&mut body, start);
            put_key(&mut body, end);
            body.extend_from_slice(&limit.to_be_bytes());
        }
        Request::Stats => body.push(opcode::STATS),
        Request::FlushCtl { pause } => {
            body.push(opcode::FLUSHCTL);
            body.push(u8::from(*pause));
        }
        Request::Shutdown => body.push(opcode::SHUTDOWN),
    }
    frame(body)
}

/// Encodes a response to its full wire frame (length prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut body = Vec::with_capacity(1 + resp.payload.len());
    body.push(resp.status as u8);
    body.extend_from_slice(&resp.payload);
    frame(body)
}

fn frame(body: Vec<u8>) -> Vec<u8> {
    debug_assert!(body.len() <= MAX_FRAME as usize);
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decodes a request from a frame *body* (the bytes the length prefix
/// counts: version, opcode, payload).
///
/// # Errors
///
/// Every malformation maps to a [`ProtocolError`]; no input panics.
pub fn decode_request(body: &[u8]) -> Result<Request> {
    let mut c = Cursor::new(body);
    let version = c
        .u8()
        .map_err(|_| ProtocolError::Malformed("empty frame"))?;
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::BadVersion(version));
    }
    let op = c
        .u8()
        .map_err(|_| ProtocolError::Malformed("missing opcode"))?;
    let req = match op {
        opcode::PING => Request::Ping,
        opcode::GET => Request::Get { key: c.key()? },
        opcode::SET => {
            let key = c.key()?;
            let value = c.value()?;
            Request::Set { key, value }
        }
        opcode::DEL => Request::Del { key: c.key()? },
        opcode::FGET => {
            let key = c.key()?;
            let index = c.u8()?;
            Request::FGet { key, index }
        }
        opcode::FSET => {
            let key = c.key()?;
            let index = c.u8()?;
            let value = c.u64()?;
            Request::FSet { key, index, value }
        }
        opcode::TXN => {
            let count = c.u16()? as usize;
            if count > MAX_TXN_OPS {
                return Err(ProtocolError::Malformed("transaction exceeds MAX_TXN_OPS"));
            }
            let mut ops = Vec::new();
            for _ in 0..count {
                let sub = c.u8()?;
                ops.push(match sub {
                    txnop::SET => {
                        let key = c.key()?;
                        let value = c.value()?;
                        TxnOp::Set { key, value }
                    }
                    txnop::DEL => TxnOp::Del { key: c.key()? },
                    txnop::FSET => {
                        let key = c.key()?;
                        let index = c.u8()?;
                        let value = c.u64()?;
                        TxnOp::FSet { key, index, value }
                    }
                    other => return Err(ProtocolError::BadOpcode(other)),
                });
            }
            Request::Txn { ops }
        }
        opcode::SCAN => {
            let shard = c.u16()?;
            let start = c.opt_key()?;
            let end = c.opt_key()?;
            let limit = c.u32()?;
            if limit == 0 || limit as usize > MAX_SCAN {
                return Err(ProtocolError::Malformed("scan limit out of 1..=MAX_SCAN"));
            }
            Request::Scan {
                shard,
                start,
                end,
                limit,
            }
        }
        opcode::STATS => Request::Stats,
        opcode::FLUSHCTL => Request::FlushCtl {
            pause: c.u8()? != 0,
        },
        opcode::SHUTDOWN => Request::Shutdown,
        other => return Err(ProtocolError::BadOpcode(other)),
    };
    c.finish()?;
    Ok(req)
}

/// One key/value pair in a `SCAN` response.
pub type ScanItem = (String, Vec<u8>);

/// Encodes a `SCAN` `OK` payload: `u8 truncated | u32 count`, then
/// `count` `key value` pairs in key order.
pub fn encode_scan_items(truncated: bool, items: &[ScanItem]) -> Vec<u8> {
    let mut out = vec![u8::from(truncated)];
    out.extend_from_slice(&(items.len() as u32).to_be_bytes());
    for (key, value) in items {
        put_key(&mut out, key);
        put_value(&mut out, value);
    }
    out
}

/// Decodes a `SCAN` `OK` payload back into its truncation flag and
/// key/value pairs.
///
/// # Errors
///
/// [`ProtocolError::Malformed`] on truncation, trailing bytes, a count
/// beyond [`MAX_SCAN`], or an out-of-bounds key/value.
pub fn decode_scan_items(payload: &[u8]) -> Result<(bool, Vec<ScanItem>)> {
    let mut c = Cursor::new(payload);
    let truncated = match c.u8()? {
        0 => false,
        1 => true,
        _ => return Err(ProtocolError::Malformed("scan truncation flag not 0/1")),
    };
    let count = c.u32()? as usize;
    if count > MAX_SCAN {
        return Err(ProtocolError::Malformed("scan count exceeds MAX_SCAN"));
    }
    let mut items = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let key = c.key()?;
        let value = c.value()?;
        items.push((key, value));
    }
    c.finish()?;
    Ok((truncated, items))
}

/// Decodes a response from a frame body (status byte + payload).
///
/// # Errors
///
/// [`ProtocolError::BadOpcode`] for an unknown status byte;
/// [`ProtocolError::Malformed`] for an empty body.
pub fn decode_response(body: &[u8]) -> Result<Response> {
    let mut c = Cursor::new(body);
    let status = c
        .u8()
        .map_err(|_| ProtocolError::Malformed("empty frame"))?;
    let status = Status::from_byte(status).ok_or(ProtocolError::BadOpcode(status))?;
    let payload = body[1..].to_vec();
    Ok(Response { status, payload })
}

/// Reads one length-prefixed frame body from `r`. Returns `Ok(None)` on a
/// clean EOF at a frame boundary (the peer closed between requests).
///
/// # Errors
///
/// [`ProtocolError::FrameTooLarge`] before any payload is buffered; I/O
/// errors (including EOF mid-frame) as [`ProtocolError::Io`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // A clean close before any length byte is a normal end of session.
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {
            r.read_exact(&mut len_buf)?;
        }
        Err(e) => return Err(ProtocolError::Io(e)),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Writes a pre-encoded frame to `w` and flushes.
///
/// # Errors
///
/// I/O errors from the stream.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<()> {
    w.write_all(frame)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_roundtrip() {
        let reqs = vec![
            Request::Ping,
            Request::Get { key: "k".into() },
            Request::Set {
                key: "user:1".into(),
                value: b"\x00\xffbytes".to_vec(),
            },
            Request::Del { key: "gone".into() },
            Request::FGet {
                key: "k".into(),
                index: 7,
            },
            Request::FSet {
                key: "k".into(),
                index: 0,
                value: u64::MAX,
            },
            Request::Txn {
                ops: vec![
                    TxnOp::Set {
                        key: "a".into(),
                        value: vec![1, 2, 3],
                    },
                    TxnOp::Del { key: "b".into() },
                    TxnOp::FSet {
                        key: "c".into(),
                        index: 3,
                        value: 42,
                    },
                ],
            },
            Request::Scan {
                shard: 3,
                start: "a".into(),
                end: "z".into(),
                limit: 100,
            },
            Request::Scan {
                shard: 0,
                start: String::new(),
                end: String::new(),
                limit: MAX_SCAN as u32,
            },
            Request::Stats,
            Request::FlushCtl { pause: true },
            Request::FlushCtl { pause: false },
            Request::Shutdown,
        ];
        for req in reqs {
            let wire = encode_request(&req);
            let mut r = io::Cursor::new(wire);
            let body = read_frame(&mut r).unwrap().unwrap();
            assert_eq!(decode_request(&body).unwrap(), req);
            // Nothing left on the stream: the frame is self-delimiting.
            assert!(read_frame(&mut r).unwrap().is_none());
        }
    }

    #[test]
    fn response_frames_roundtrip() {
        for resp in [
            Response::status(Status::Ok),
            Response::ok(b"payload".to_vec()),
            Response::status(Status::NotFound),
            Response::status(Status::Busy),
            Response::err("commit failed"),
            Response::bad_request("version 9"),
        ] {
            let wire = encode_response(&resp);
            let mut r = io::Cursor::new(wire);
            let body = read_frame(&mut r).unwrap().unwrap();
            assert_eq!(decode_response(&body).unwrap(), resp);
        }
    }

    #[test]
    fn scan_limits_are_enforced_at_decode() {
        for limit in [0u32, MAX_SCAN as u32 + 1] {
            let wire = encode_request(&Request::Scan {
                shard: 0,
                start: String::new(),
                end: String::new(),
                limit,
            });
            assert!(matches!(
                decode_request(&wire[4..]),
                Err(ProtocolError::Malformed(_))
            ));
        }
    }

    #[test]
    fn scan_item_payloads_roundtrip_and_reject_garbage() {
        for (truncated, items) in [
            (false, vec![]),
            (true, vec![("k".to_string(), b"v".to_vec())]),
            (
                false,
                vec![
                    ("a".to_string(), Vec::new()),
                    ("b".to_string(), vec![0, 255, 7]),
                ],
            ),
        ] {
            let wire = encode_scan_items(truncated, &items);
            assert_eq!(decode_scan_items(&wire).unwrap(), (truncated, items));
        }
        // Truncations and trailing garbage are errors, never panics.
        let wire = encode_scan_items(true, &[("key".to_string(), vec![1, 2, 3])]);
        for cut in 0..wire.len() {
            assert!(decode_scan_items(&wire[..cut]).is_err());
        }
        let mut extended = wire;
        extended.push(0);
        assert!(decode_scan_items(&extended).is_err());
        assert!(decode_scan_items(&[2]).is_err(), "bad truncation flag");
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_buffering() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let mut r = io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut r),
            Err(ProtocolError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn truncated_and_trailing_payloads_error_without_panicking() {
        // A SET whose frame body is cut at every possible point.
        let full = encode_request(&Request::Set {
            key: "key".into(),
            value: vec![9; 32],
        });
        let body = &full[4..];
        for cut in 0..body.len() {
            let _ = decode_request(&body[..cut]); // must not panic
        }
        // Trailing garbage after a well-formed payload is rejected.
        let mut extended = body.to_vec();
        extended.push(0);
        assert!(matches!(
            decode_request(&extended),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn wrong_version_and_unknown_opcode_are_named_errors() {
        let mut wire = encode_request(&Request::Ping);
        wire[4] = 2; // version byte
        assert!(matches!(
            decode_request(&wire[4..]),
            Err(ProtocolError::BadVersion(2))
        ));
        let mut wire = encode_request(&Request::Ping);
        wire[5] = 0x7f; // opcode byte
        assert!(matches!(
            decode_request(&wire[4..]),
            Err(ProtocolError::BadOpcode(0x7f))
        ));
    }
}
