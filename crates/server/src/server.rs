//! The serving front end: a TCP server mapping the wire protocol onto a
//! [`ShardedHeap`].
//!
//! # How requests meet the heap
//!
//! * **Reads (`GET`/`FGET`) ride lock-free read sessions.** Each read
//!   pins the reclamation epoch and goes through the shard's published
//!   metadata replica ([`HeapHandle::read`]) — it never touches the
//!   heap's writer lock, so reads keep flowing while writers commit and
//!   while the flush pipeline is paused or lagging.
//! * **Writes (`SET`/`DEL`/`FSET`/`TXN`) are applied under the shard's
//!   undo-logged transaction engine and acknowledged on *durability*.**
//!   The durability wait is where connections cooperate: a per-shard
//!   `GroupCommitter` batches every connection's pending commit request
//!   into **one epoch seal** — the first writer to arrive becomes the
//!   leader, seals the epoch (capturing every already-applied mutation),
//!   and polls the [`CommitTicket`] while followers park; when the epoch
//!   turns durable, all of them are answered at once. This is the same
//!   leader-drain idiom as minidb's WAL group commit, lifted across
//!   connections.
//! * **Backpressure.** Before a write is applied, the shard's flush
//!   pipeline depth ([`HeapHandle::pending_commits`]) and the committer's
//!   waiter count are checked against `max_pending`; past the bound the
//!   server answers [`Status::Busy`] without touching the heap. A write
//!   that was applied but cannot be made durable within `commit_timeout`
//!   (e.g. the pipeline is paused) is also answered `BUSY` — bounded
//!   queues and bounded waits, so a lagging flush pipeline degrades into
//!   refusals, never into unbounded memory or hung connections.
//!
//! # Data model
//!
//! Every key owns one persistent [`KvEntry`] object in the shard the key
//! hashes to, published under the key in that shard's root table. The
//! entry's schema has three typed fields: `data` (a u64 array packing
//! the raw value bytes), `fields` ([`NUM_FIELDS`] u64 slots addressed by
//! `FGET`/`FSET`), and `key` (the entry's own key string, the field the
//! shard's secondary index is declared over). `DEL` unpublishes the root
//! and removes the index entry; the entry becomes garbage for the
//! shard's GC.
//!
//! # Range scans
//!
//! Each shard maintains one persistent [`Index`] (`espresso-index`
//! B-tree) named `kv` over the `key` field. Every write keeps it in
//! step **inside the same undo-logged transaction** as the entry
//! mutation — an abort (or crash) rolls back both together. `SCAN`
//! walks one shard's index through the same lock-free read sessions as
//! `GET`, so scans are never answered `BUSY` and always observe a
//! consistent tree snapshot.

use std::collections::{HashMap, VecDeque};
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use espresso_core::{
    CommitState, CommitTicket, HeapHandle, HeapManager, HeapTxn, LoadOptions, PjhConfig, PjhError,
    ShardedHeap,
};
use espresso_index::{Index, Key};
use espresso_object::{ArrFld, PArr, PObject, PRef, Schema, StrFld};

use crate::protocol::{
    self, Request, Response, Status, TxnOp, MAX_KEY, MAX_SCAN_BYTES, MAX_VALUE, NUM_FIELDS,
    PROTOCOL_VERSION,
};

/// Name of the per-shard secondary index over [`KvEntry`]'s `key` field.
pub const KV_INDEX: &str = "kv";

/// The persistent object behind every key: raw value bytes in `data`,
/// [`NUM_FIELDS`] typed u64 slots in `fields`, and the entry's own key
/// string in `key` (the indexed field backing `SCAN`).
pub struct KvEntry;

impl PObject for KvEntry {
    const CLASS_NAME: &'static str = "EspressoKvEntry";
    fn schema() -> Schema {
        Schema::builder(Self::CLASS_NAME)
            .array_field("data")
            .array_field("fields")
            .str_field("key")
            .build()
    }
}

/// Server construction/runtime errors.
#[derive(Debug)]
pub enum ServerError {
    /// Heap creation/loading failed.
    Heap(PjhError),
    /// Socket setup failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Heap(e) => write!(f, "heap error: {e}"),
            ServerError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl From<PjhError> for ServerError {
    fn from(e: PjhError) -> ServerError {
        ServerError::Heap(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> ServerError {
        ServerError::Io(e)
    }
}

impl std::error::Error for ServerError {}

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Number of heap shards (each with its own flush pipeline and group
    /// committer).
    pub shards: usize,
    /// Bytes per shard.
    pub shard_bytes: usize,
    /// Heap directory; `None` uses a fresh temp directory owned by the
    /// server (removed when it stops).
    pub dir: Option<PathBuf>,
    /// Sharded-heap base name (`{base}.shard{i}` images).
    pub base: String,
    /// Backpressure bound: a write is refused `BUSY` when the target
    /// shard's flush-pipeline queue or durability-waiter count exceeds
    /// this.
    pub max_pending: usize,
    /// How long a write may wait for its epoch to turn durable before
    /// being answered `BUSY`.
    pub commit_timeout: Duration,
    /// Per-shard name-table capacity. Every raw key is a named root, so
    /// this bounds the distinct keys a shard can hold; the core default
    /// (256) suits embedded use but is far too small for a KV front end.
    pub name_table_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 4,
            shard_bytes: 16 << 20,
            dir: None,
            base: "kv".to_string(),
            max_pending: 64,
            commit_timeout: Duration::from_secs(1),
            name_table_capacity: 8 << 10,
        }
    }
}

/// Cross-connection group commit for one shard: the leader-drain idiom.
///
/// A *generation* is one cohort of writers acknowledged by one epoch
/// seal. Writers apply their mutation first, then join the current
/// generation; the first joiner with no active leader seals **after**
/// closing the generation (so the snapshot provably contains every
/// member's mutation) and everyone in it is released together when the
/// epoch turns durable.
struct GroupCommitter {
    state: Mutex<GcState>,
    cond: Condvar,
}

struct GcState {
    /// Generation currently accepting members. Starts at 1 so that no
    /// member is ever "already covered" by the initial `completed_gen`.
    open_gen: u64,
    /// Highest generation whose drain has completed.
    completed_gen: u64,
    /// A leader is sealing/waiting right now.
    leader_active: bool,
    /// Members currently inside `commit_durable` (backpressure input).
    waiting: usize,
    /// Recent drain outcomes by generation; cohort members resolve their
    /// reply from the first drain at or past their generation.
    results: VecDeque<(u64, DrainOutcome)>,
    /// Drains performed (stats: epoch seals issued by this committer).
    drains: u64,
    /// Writers acknowledged across all drains (stats: `acked / drains`
    /// is the coalescing factor).
    acked: u64,
}

/// How one leader drain ended — inherited by every cohort member.
#[derive(Clone)]
enum DrainOutcome {
    /// The sealed epoch is durable: the whole cohort is acked `OK`.
    Durable,
    /// The seal landed but durability missed the deadline (paused or
    /// lagging pipeline): the cohort answers `BUSY`; the epoch may still
    /// become durable later.
    TimedOut,
    /// The seal or flush failed.
    Failed(String),
}

/// How a write's durability wait ended.
enum CommitOutcome {
    /// The epoch covering the write is durable in the image file.
    Durable,
    /// Not durable within the deadline (pipeline lagging or paused); the
    /// mutation is applied and may become durable later.
    TimedOut,
    /// The apply failed or was aborted.
    Failed(String),
}

impl GroupCommitter {
    fn new() -> GroupCommitter {
        GroupCommitter {
            state: Mutex::new(GcState {
                open_gen: 1,
                completed_gen: 0,
                leader_active: false,
                waiting: 0,
                results: VecDeque::new(),
                drains: 0,
                acked: 0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Members currently parked in [`commit_durable`](Self::commit_durable).
    fn waiting(&self) -> usize {
        self.state.lock().unwrap().waiting
    }

    fn drains_and_acked(&self) -> (u64, u64) {
        let st = self.state.lock().unwrap();
        (st.drains, st.acked)
    }

    /// Joins the open generation and blocks until a leader-sealed epoch
    /// covering it turns durable (or the deadline passes). The caller
    /// must have **already applied** its mutation — membership means "my
    /// stores happened before this generation's seal".
    fn commit_durable(&self, handle: &HeapHandle, timeout: Duration) -> CommitOutcome {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap();
        let my_gen = st.open_gen;
        st.waiting += 1;
        let outcome = loop {
            if st.completed_gen >= my_gen {
                // Covered: the drain that completed a generation ≥ mine
                // sealed after my mutation was applied; inherit its
                // outcome.
                let drained = st
                    .results
                    .iter()
                    .find(|(g, _)| *g >= my_gen)
                    .map(|(_, outcome)| outcome.clone())
                    .unwrap_or(DrainOutcome::TimedOut);
                break match drained {
                    DrainOutcome::Durable => {
                        st.acked += 1;
                        CommitOutcome::Durable
                    }
                    DrainOutcome::TimedOut => CommitOutcome::TimedOut,
                    DrainOutcome::Failed(reason) => CommitOutcome::Failed(reason),
                };
            }
            if !st.leader_active {
                // Become the leader: close the generation (later writers
                // join the next one), seal with no lock held, publish the
                // outcome for the whole cohort.
                st.leader_active = true;
                let lead_gen = st.open_gen;
                st.open_gen += 1;
                drop(st);
                let result = seal_and_wait(handle, deadline);
                st = self.state.lock().unwrap();
                st.leader_active = false;
                st.completed_gen = lead_gen;
                st.drains += 1;
                let drained = match &result {
                    CommitOutcome::Durable => DrainOutcome::Durable,
                    CommitOutcome::TimedOut => DrainOutcome::TimedOut,
                    CommitOutcome::Failed(reason) => DrainOutcome::Failed(reason.clone()),
                };
                st.results.push_back((lead_gen, drained));
                while st.results.len() > 32 {
                    st.results.pop_front();
                }
                self.cond.notify_all();
                // Loop: completed_gen ≥ my_gen resolves our own outcome
                // through the same path as every cohort member.
                continue;
            }
            let (guard, wait) = self
                .cond
                .wait_timeout(st, deadline.saturating_duration_since(Instant::now()))
                .unwrap();
            st = guard;
            if wait.timed_out() && st.completed_gen < my_gen {
                break CommitOutcome::TimedOut;
            }
        };
        st.waiting -= 1;
        outcome
    }
}

/// Seals one epoch on `handle` and polls the ticket until durable,
/// failed, or the deadline passes. Polling (not `wait()`) keeps the
/// barrier non-consuming *and* bounded: a paused pipeline turns into a
/// timeout, never a hung connection.
fn seal_and_wait(handle: &HeapHandle, deadline: Instant) -> CommitOutcome {
    let ticket: CommitTicket = match handle.commit() {
        Ok(t) => t,
        Err(e) => return CommitOutcome::Failed(e.to_string()),
    };
    loop {
        match ticket.state() {
            CommitState::Durable => return CommitOutcome::Durable,
            CommitState::Failed(reason) => return CommitOutcome::Failed(reason),
            CommitState::InFlight => {
                if Instant::now() >= deadline {
                    return CommitOutcome::TimedOut;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

#[derive(Default)]
struct Counters {
    pings: AtomicU64,
    gets: AtomicU64,
    sets: AtomicU64,
    dels: AtomicU64,
    fgets: AtomicU64,
    fsets: AtomicU64,
    txns: AtomicU64,
    scans: AtomicU64,
    stats: AtomicU64,
    busy: AtomicU64,
    errors: AtomicU64,
    bad_frames: AtomicU64,
    conns_opened: AtomicU64,
    conns_closed: AtomicU64,
}

struct Inner {
    heap: ShardedHeap,
    /// Keeps the heap directory alive (temp managers remove it on drop).
    _mgr: HeapManager,
    committers: Vec<GroupCommitter>,
    /// Typed field handles into [`KvEntry`] (indices; identical on every
    /// shard because the schema is).
    data_fld: ArrFld<KvEntry>,
    fields_fld: ArrFld<KvEntry>,
    key_fld: StrFld<KvEntry>,
    /// Per-shard secondary index over the `key` field (DRAM handles; the
    /// trees themselves live in the shard heaps and survive restarts).
    indexes: Vec<Index<KvEntry>>,
    config: ServerConfig,
    counters: Counters,
    started: Instant,
    shutdown: AtomicBool,
    /// Live connection sockets by id, shut down to unblock readers on
    /// stop; each entry is removed by its connection's [`ConnCleanup`].
    conns: Mutex<Vec<(u64, TcpStream)>>,
    next_conn_id: AtomicU64,
}

/// Drop guard owned by each connection thread: removes the connection's
/// registry entry and closes its socket even if the handler panics —
/// without it, a dying handler would leave the registry clone's FD open
/// and the client blocked in `read` forever.
struct ConnCleanup {
    inner: Arc<Inner>,
    id: u64,
}

impl Drop for ConnCleanup {
    fn drop(&mut self) {
        let mut conns = self.inner.conns.lock().unwrap();
        if let Some(pos) = conns.iter().position(|(id, _)| *id == self.id) {
            let (_, stream) = conns.swap_remove(pos);
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        drop(conns);
        self.inner
            .counters
            .conns_closed
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`stop`](Self::stop) or send the `SHUTDOWN` opcode, then
/// [`wait`](Self::wait).
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// The server: see the module docs for the serving model.
pub struct Server;

impl Server {
    /// Opens (or creates) the sharded heap and starts accepting
    /// connections. Returns once the listener is bound.
    ///
    /// # Errors
    ///
    /// Heap creation/open errors; socket bind errors.
    pub fn start(config: ServerConfig) -> Result<ServerHandle, ServerError> {
        let mgr = match &config.dir {
            Some(dir) => HeapManager::open(dir)?,
            None => HeapManager::temp()?,
        };
        let heap = if ShardedHeap::exists(&mgr, &config.base) {
            ShardedHeap::open(&mgr, &config.base, LoadOptions::default())?
        } else {
            ShardedHeap::create(
                &mgr,
                &config.base,
                config.shards,
                config.shard_bytes,
                PjhConfig {
                    name_table_capacity: config.name_table_capacity,
                    ..PjhConfig::default()
                },
            )?
        };
        // Register the entry schema on every shard up front: validates
        // persisted fingerprints on reopen, and publishes the klass into
        // each shard's read replica before the first GET. The per-shard
        // `kv` index over the `key` field is opened (or created, on a
        // fresh shard) in the same pass, so every write path below can
        // assume it exists.
        let mut fld = None;
        let mut indexes = Vec::with_capacity(heap.num_shards());
        for i in 0..heap.num_shards() {
            let class = heap
                .handle(i)
                .register::<KvEntry>()
                .map_err(ServerError::Heap)?;
            if fld.is_none() {
                let data = class.arr_field("data").expect("declared field");
                let fields = class.arr_field("fields").expect("declared field");
                let key = class.str_field("key").expect("declared field");
                fld = Some((data, fields, key));
            }
            indexes.push(
                heap.handle(i)
                    .with_mut(|h| Index::<KvEntry>::open_or_create(h, KV_INDEX, "key"))
                    .map_err(ServerError::Heap)?,
            );
        }
        let (data_fld, fields_fld, key_fld) = fld.expect("at least one shard");
        let committers = (0..heap.num_shards())
            .map(|_| GroupCommitter::new())
            .collect();

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            heap,
            _mgr: mgr,
            committers,
            data_fld,
            fields_fld,
            key_fld,
            indexes,
            config,
            counters: Counters::default(),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            next_conn_id: AtomicU64::new(0),
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::Builder::new()
            .name("espresso-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_inner))
            .expect("spawn accept thread");
        Ok(ServerHandle {
            addr,
            inner,
            accept_thread: Some(accept_thread),
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served heap — test and bench access to the pause/abort crash
    /// hooks and to shard state.
    pub fn heap(&self) -> &ShardedHeap {
        &self.inner.heap
    }

    /// Asks the server to stop (idempotent): stops accepting, unblocks
    /// every connection, resumes a paused flush pipeline so the final
    /// commit can land. [`wait`](Self::wait) joins the drain.
    pub fn stop(&self) {
        trigger_shutdown(&self.inner, self.addr);
    }

    /// Blocks until the server has fully stopped (accept loop joined,
    /// connections drained, final all-shards commit sealed and waited).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// [`stop`](Self::stop) then [`wait`](Self::wait).
    pub fn stop_and_wait(self) {
        self.stop();
        self.wait();
    }
}

fn trigger_shutdown(inner: &Arc<Inner>, addr: SocketAddr) {
    if inner.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // A paused pipeline would wedge the final commit and any parked
    // durability waiters: resume before draining.
    inner.heap.set_flush_paused(false);
    // Unblock every connection reader, then the accept loop itself.
    for (_, conn) in inner.conns.lock().unwrap().iter() {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    let mut workers = Vec::new();
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        inner.counters.conns_opened.fetch_add(1, Ordering::Relaxed);
        let id = inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
        inner
            .conns
            .lock()
            .unwrap()
            .push((id, stream.try_clone().expect("clone connection socket")));
        let conn_inner = Arc::clone(inner);
        let addr = listener.local_addr().expect("listener addr");
        workers.push(
            std::thread::Builder::new()
                .name("espresso-conn".to_string())
                .spawn(move || {
                    let _cleanup = ConnCleanup {
                        inner: Arc::clone(&conn_inner),
                        id,
                    };
                    serve_connection(stream, &conn_inner, addr);
                })
                .expect("spawn connection thread"),
        );
    }
    for w in workers {
        let _ = w.join();
    }
    // Final checkpoint: seal every shard and poll the fan-out barrier
    // non-consumingly (ShardedCommitTicket::state), bounded by the commit
    // timeout — shutdown must not hang on a wedged shard.
    if let Ok(ticket) = inner.heap.commit() {
        let deadline = Instant::now() + inner.config.commit_timeout;
        loop {
            match ticket.state() {
                CommitState::Durable => break,
                CommitState::Failed(reason) => {
                    eprintln!("espresso-server: final commit failed: {reason}");
                    break;
                }
                CommitState::InFlight => {
                    if Instant::now() >= deadline {
                        eprintln!("espresso-server: final commit still in flight at shutdown");
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }
}

fn serve_connection(stream: TcpStream, inner: &Arc<Inner>, server_addr: SocketAddr) {
    let mut reader = stream.try_clone().expect("clone connection socket");
    let mut writer = BufWriter::new(stream);
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let body = match protocol::read_frame(&mut reader) {
            Ok(Some(body)) => body,
            Ok(None) => return, // clean close between frames
            Err(protocol::ProtocolError::Io(_)) => return,
            Err(e) => {
                // Framing is broken (oversized length prefix): answer and
                // drop the connection — resynchronization is impossible.
                inner.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                let resp = Response::bad_request(e.to_string());
                let _ = protocol::write_frame(&mut writer, &protocol::encode_response(&resp));
                return;
            }
        };
        let (resp, shutdown) = match protocol::decode_request(&body) {
            Ok(req) => handle_request(inner, req),
            Err(e) => {
                inner.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                let _ = protocol::write_frame(
                    &mut writer,
                    &protocol::encode_response(&Response::bad_request(e.to_string())),
                );
                return; // same: cannot trust the stream position anymore
            }
        };
        if protocol::write_frame(&mut writer, &protocol::encode_response(&resp)).is_err() {
            return;
        }
        if shutdown {
            trigger_shutdown(inner, server_addr);
            return;
        }
    }
}

/// Handles one decoded request; the bool asks the caller to trigger
/// server shutdown after replying.
fn handle_request(inner: &Arc<Inner>, req: Request) -> (Response, bool) {
    let c = &inner.counters;
    let resp = match req {
        Request::Ping => {
            c.pings.fetch_add(1, Ordering::Relaxed);
            Response::status(Status::Ok)
        }
        Request::Get { key } => {
            c.gets.fetch_add(1, Ordering::Relaxed);
            op_get(inner, &key)
        }
        Request::Set { key, value } => {
            c.sets.fetch_add(1, Ordering::Relaxed);
            write_op(inner, &key, |inner| op_set(inner, &key, &value))
        }
        Request::Del { key } => {
            c.dels.fetch_add(1, Ordering::Relaxed);
            op_del(inner, &key)
        }
        Request::FGet { key, index } => {
            c.fgets.fetch_add(1, Ordering::Relaxed);
            op_fget(inner, &key, index)
        }
        Request::FSet { key, index, value } => {
            c.fsets.fetch_add(1, Ordering::Relaxed);
            if usize::from(index) >= NUM_FIELDS {
                Response::err(format!(
                    "field index {index} out of range (0..{NUM_FIELDS})"
                ))
            } else {
                write_op(inner, &key, |inner| op_fset(inner, &key, index, value))
            }
        }
        Request::Txn { ops } => {
            c.txns.fetch_add(1, Ordering::Relaxed);
            op_txn(inner, &ops)
        }
        Request::Scan {
            shard,
            start,
            end,
            limit,
        } => {
            c.scans.fetch_add(1, Ordering::Relaxed);
            op_scan(inner, shard, &start, &end, limit)
        }
        Request::Stats => {
            c.stats.fetch_add(1, Ordering::Relaxed);
            Response::ok(render_stats(inner).into_bytes())
        }
        Request::FlushCtl { pause } => {
            inner.heap.set_flush_paused(pause);
            Response::status(Status::Ok)
        }
        Request::Shutdown => return (Response::status(Status::Ok), true),
    };
    match resp.status {
        Status::Busy => {
            c.busy.fetch_add(1, Ordering::Relaxed);
        }
        Status::Err => {
            c.errors.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    }
    (resp, false)
}

// ---- value <-> word-array packing ----

/// Words needed for `len` value bytes: one length word plus packed bytes.
fn value_words(len: usize) -> usize {
    1 + len.div_ceil(8)
}

fn pack_word(chunk: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    w[..chunk.len()].copy_from_slice(chunk);
    u64::from_le_bytes(w)
}

// ---- operations ----

/// Admission control + group-commit acknowledgement around a write: the
/// closure applies the mutation; the reply is sent only once a sealed
/// epoch covering it is durable.
fn write_op(
    inner: &Arc<Inner>,
    key: &str,
    apply: impl FnOnce(&Arc<Inner>) -> Result<Response, PjhError>,
) -> Response {
    let shard = inner.heap.shard_of(key);
    if let Some(busy) = admission_check(inner, shard) {
        return busy;
    }
    let resp = match apply(inner) {
        Ok(resp) => resp,
        Err(e) => return Response::err(e.to_string()),
    };
    if resp.status != Status::Ok {
        return resp; // e.g. NotFound: nothing was mutated, nothing to wait on
    }
    ack_durable(inner, shard, resp)
}

/// `BUSY` when the shard's flush pipeline or durability queue is past the
/// bound — checked before the mutation so refused writes are never
/// applied.
fn admission_check(inner: &Arc<Inner>, shard: usize) -> Option<Response> {
    let bound = inner.config.max_pending;
    if inner.heap.handle(shard).pending_commits() > bound
        || inner.committers[shard].waiting() >= bound
    {
        return Some(Response::status(Status::Busy));
    }
    None
}

/// Joins the shard's group commit and maps the outcome to a reply.
fn ack_durable(inner: &Arc<Inner>, shard: usize, ok: Response) -> Response {
    match inner.committers[shard]
        .commit_durable(inner.heap.handle(shard), inner.config.commit_timeout)
    {
        CommitOutcome::Durable => ok,
        CommitOutcome::TimedOut => Response::status(Status::Busy),
        CommitOutcome::Failed(reason) => Response::err(format!("commit failed: {reason}")),
    }
}

fn op_get(inner: &Arc<Inner>, key: &str) -> Response {
    let session = inner.heap.handle_for(key).read();
    let entry: Option<PRef<KvEntry>> = match session.root::<KvEntry>(key) {
        Ok(e) => e,
        Err(e) => return Response::err(e.to_string()),
    };
    let Some(entry) = entry else {
        return Response::status(Status::NotFound);
    };
    let Some(data) = session.get_arr(entry, inner.data_fld) else {
        // Entry exists (e.g. created by FSET) but holds no value.
        return Response::status(Status::NotFound);
    };
    let len = session.arr_get(data, 0) as usize;
    let mut value = Vec::with_capacity(len);
    for i in 0..len.div_ceil(8) {
        let word = session.arr_get(data, 1 + i).to_le_bytes();
        let take = (len - i * 8).min(8);
        value.extend_from_slice(&word[..take]);
    }
    Response::ok(value)
}

fn op_fget(inner: &Arc<Inner>, key: &str, index: u8) -> Response {
    if usize::from(index) >= NUM_FIELDS {
        return Response::err(format!(
            "field index {index} out of range (0..{NUM_FIELDS})"
        ));
    }
    let session = inner.heap.handle_for(key).read();
    let entry: Option<PRef<KvEntry>> = match session.root::<KvEntry>(key) {
        Ok(e) => e,
        Err(e) => return Response::err(e.to_string()),
    };
    let Some(entry) = entry else {
        return Response::status(Status::NotFound);
    };
    let Some(fields) = session.get_arr(entry, inner.fields_fld) else {
        return Response::status(Status::NotFound);
    };
    let v = session.arr_get(fields, usize::from(index));
    Response::ok(v.to_be_bytes().to_vec())
}

/// Allocates and fills a value array **outside** any transaction, with
/// raw persisted stores (the `alloc_string` idiom). The array is fresh
/// and unreachable, so it needs no undo logging — crucial because the
/// undo log is bounded and a 1 MiB value spans ~128 K words. Word 0 is
/// the byte length; the rest pack the bytes 8-per-word, little-endian.
fn alloc_value_arr(h: &mut espresso_core::Pjh, value: &[u8]) -> Result<PArr, PjhError> {
    let arr = h.alloc_arr(value_words(value.len()))?;
    h.array_set(arr.raw(), 0, value.len() as u64);
    for (i, chunk) in value.chunks(8).enumerate() {
        h.array_set(arr.raw(), 1 + i, pack_word(chunk));
    }
    h.flush_object(arr.raw());
    Ok(arr)
}

/// Allocates one fresh [`KvEntry`] for `key` inside `t`: fields array,
/// back-pointer `key` string, and the shard index entry, all in the one
/// transaction. The entry's own stores are unlogged init stores (it is
/// transaction-fresh and unreachable until published), so the log cost
/// is exactly the index insert's two records — which is what keeps a
/// full [`protocol::MAX_TXN_OPS`]-op transaction inside the bounded
/// undo log. The entry is flushed here; the caller publishes it after
/// the transaction commits.
fn create_entry(
    inner: &Inner,
    t: &mut HeapTxn<'_>,
    idx: &Index<KvEntry>,
    key: &str,
) -> Result<PRef<KvEntry>, PjhError> {
    let entry = t.alloc::<KvEntry>()?;
    let fields = t.alloc_arr(NUM_FIELDS)?;
    t.init_field_ref(entry.raw(), inner.fields_fld.index(), fields.raw())?;
    let key_str = t.alloc_string(key)?;
    t.init_field_ref(entry.raw(), inner.key_fld.index(), key_str)?;
    // Init stores are volatile: persist the entry before the index
    // insert's logged root swap can make it reachable.
    t.heap().flush(entry);
    idx.insert(t, &Key::Str(key.to_string()), entry)?;
    Ok(entry)
}

fn op_set(inner: &Arc<Inner>, key: &str, value: &[u8]) -> Result<Response, PjhError> {
    let shard = inner.heap.shard_of(key);
    let handle = inner.heap.handle(shard);
    let idx = &inner.indexes[shard];
    with_gc_retry(handle, |h| {
        let arr = alloc_value_arr(h, value)?;
        let (entry, fresh) = {
            let data_fld = inner.data_fld;
            // The transaction itself only allocates the entry (if new,
            // with its index insert) and relinks `data` — a few logged
            // stores, however large the value.
            h.txn(|t| {
                let (entry, fresh) = match t.root::<KvEntry>(key)? {
                    Some(entry) => (entry, false),
                    None => (create_entry(inner, t, idx, key)?, true),
                };
                t.set_arr(entry, data_fld, Some(arr))?;
                Ok((entry, fresh))
            })?
        };
        if fresh {
            // Publish after the transaction commits: a crash in between
            // leaves an unreachable (garbage) entry, never a torn one.
            // Still inside this write session, so no commit epoch can
            // seal between the transaction and the publication.
            h.set_root_typed(key, entry)?;
        }
        Ok(Response::status(Status::Ok))
    })
}

fn op_fset(inner: &Arc<Inner>, key: &str, index: u8, value: u64) -> Result<Response, PjhError> {
    let shard = inner.heap.shard_of(key);
    let handle = inner.heap.handle(shard);
    let idx = &inner.indexes[shard];
    with_gc_retry(handle, |h| {
        let fields_fld = inner.fields_fld;
        let (entry, fresh) = h.txn(|t| {
            let (entry, fresh) = match t.root::<KvEntry>(key)? {
                Some(entry) => (entry, false),
                None => (create_entry(inner, t, idx, key)?, true),
            };
            let fields = t
                .get_arr(entry, fields_fld)
                .expect("entries always carry a fields array");
            t.arr_set(fields, usize::from(index), value);
            Ok((entry, fresh))
        })?;
        if fresh {
            h.set_root_typed(key, entry)?;
        }
        Ok(Response::status(Status::Ok))
    })
}

fn op_del(inner: &Arc<Inner>, key: &str) -> Response {
    let shard = inner.heap.shard_of(key);
    if let Some(busy) = admission_check(inner, shard) {
        return busy;
    }
    let idx = &inner.indexes[shard];
    // The index entry is removed in a transaction, then the root is
    // unpublished — both inside one write session, so no commit epoch
    // can seal between them. Root-table updates are not undo-logged, so
    // a crash exactly between the two leaves the key readable but
    // unscannable until deleted again; it can never leave the index
    // pointing at reclaimed storage (index references keep entries
    // live).
    let removed = with_gc_retry(inner.heap.handle(shard), |h| {
        let Some(entry) = h.root::<KvEntry>(key)? else {
            return Ok(false);
        };
        h.txn(|t| idx.remove(t, &Key::Str(key.to_string()), entry).map(|_| ()))?;
        h.remove_root(key);
        Ok(true)
    });
    match removed {
        Ok(false) => Response::status(Status::NotFound),
        Ok(true) => ack_durable(inner, shard, Response::status(Status::Ok)),
        Err(e) => Response::err(e.to_string()),
    }
}

fn op_scan(inner: &Arc<Inner>, shard: u16, start: &str, end: &str, limit: u32) -> Response {
    use std::ops::Bound;
    let shard = usize::from(shard);
    if shard >= inner.heap.num_shards() {
        return Response::err(format!(
            "shard {shard} out of range (0..{})",
            inner.heap.num_shards()
        ));
    }
    // Same lock-free read path as GET: the session pins a consistent
    // snapshot of the shard, and every index node reachable from the
    // root published at pin time is immutable.
    let session = inner.heap.handle(shard).read();
    let lo = if start.is_empty() {
        Bound::Unbounded
    } else {
        Bound::Included(Key::Str(start.to_string()))
    };
    let hi = if end.is_empty() {
        Bound::Unbounded
    } else {
        Bound::Excluded(Key::Str(end.to_string()))
    };
    let iter = match inner.indexes[shard].range(&session, (lo, hi)) {
        Ok(it) => it,
        Err(e) => return Response::err(e.to_string()),
    };
    let mut items: Vec<protocol::ScanItem> = Vec::new();
    let mut bytes = 0usize;
    let mut truncated = false;
    for (key, entry) in iter {
        let Key::Str(key) = key else {
            return Response::err("kv index key is not a string".to_string());
        };
        // Field-only entries (FSET with no SET) hold no value and are
        // skipped, exactly as GET answers NOT_FOUND for them.
        let Some(data) = session.get_arr(entry, inner.data_fld) else {
            continue;
        };
        let len = session.arr_get(data, 0) as usize;
        if items.len() >= limit as usize || bytes + key.len() + len > MAX_SCAN_BYTES {
            truncated = true;
            break;
        }
        let mut value = Vec::with_capacity(len);
        for i in 0..len.div_ceil(8) {
            let word = session.arr_get(data, 1 + i).to_le_bytes();
            let take = (len - i * 8).min(8);
            value.extend_from_slice(&word[..take]);
        }
        bytes += key.len() + value.len();
        items.push((key, value));
    }
    Response::ok(protocol::encode_scan_items(truncated, &items))
}

fn op_txn(inner: &Arc<Inner>, ops: &[TxnOp]) -> Response {
    if ops.is_empty() {
        return Response::err("empty transaction");
    }
    let shard = inner.heap.shard_of(ops[0].key());
    for op in &ops[1..] {
        let s = inner.heap.shard_of(op.key());
        if s != shard {
            return Response::err(format!(
                "cross-shard transaction: key {:?} routes to shard {s}, {:?} to shard {shard} \
                 (shards are independent atomicity domains)",
                op.key(),
                ops[0].key()
            ));
        }
    }
    for op in ops {
        if let TxnOp::FSet { index, .. } = op {
            if usize::from(*index) >= NUM_FIELDS {
                return Response::err(format!(
                    "field index {index} out of range (0..{NUM_FIELDS})"
                ));
            }
        }
    }
    if let Some(busy) = admission_check(inner, shard) {
        return busy;
    }
    let handle = inner.heap.handle(shard);
    let data_fld = inner.data_fld;
    let fields_fld = inner.fields_fld;
    let idx = &inner.indexes[shard];
    let applied = with_gc_retry(handle, |h| {
        // All object mutations run inside one undo-logged transaction;
        // the net root change per key is staged and applied right after
        // it commits, still under this write session — so no epoch can
        // seal a state where the transaction landed but the roots did
        // not, and an abort leaves the root table untouched. Staging is
        // *per key, in op order* (a map, not publish/unpublish lists):
        // `Del k` then `Set k` must leave a fresh entry published, and
        // `Set k` then `Del k` must leave the key gone.
        let mut staged: HashMap<String, Option<PRef<KvEntry>>> = HashMap::new();
        // Value arrays are filled unlogged before the transaction (fresh
        // objects need no undo records — see `alloc_value_arr`); the
        // transaction links them, so its log cost is a few words per op
        // regardless of value sizes.
        let mut value_arrs: Vec<PArr> = Vec::new();
        for op in ops {
            if let TxnOp::Set { value, .. } = op {
                value_arrs.push(alloc_value_arr(h, value)?);
            }
        }
        h.txn(|t| {
            staged.clear();
            let mut next_arr = value_arrs.iter();
            // The entry an upsert op targets: the staged view of the key
            // if an earlier op touched it (`None` = staged-deleted, so a
            // fresh entry is required), else the published root. Fresh
            // entries are index-inserted on creation; `Del` removes the
            // current entry (staged or published) from the index — so
            // the index mutations mirror the ops in order and the log
            // cost stays at most three records per op.
            let resolve = |t: &mut HeapTxn<'_>,
                           staged: &mut HashMap<String, Option<PRef<KvEntry>>>,
                           key: &String|
             -> Result<PRef<KvEntry>, PjhError> {
                let current = match staged.get(key) {
                    Some(view) => *view,
                    None => t.root::<KvEntry>(key)?,
                };
                if let Some(entry) = current {
                    return Ok(entry);
                }
                let entry = create_entry(inner, t, idx, key)?;
                staged.insert(key.clone(), Some(entry));
                Ok(entry)
            };
            for op in ops {
                match op {
                    TxnOp::Set { key, .. } => {
                        let entry = resolve(t, &mut staged, key)?;
                        let arr = *next_arr.next().expect("one array per Set op");
                        t.set_arr(entry, data_fld, Some(arr))?;
                    }
                    TxnOp::Del { key } => {
                        let current = match staged.get(key) {
                            Some(view) => *view,
                            None => t.root::<KvEntry>(key)?,
                        };
                        if let Some(entry) = current {
                            idx.remove(t, &Key::Str(key.clone()), entry)?;
                        }
                        staged.insert(key.clone(), None);
                    }
                    TxnOp::FSet { key, index, value } => {
                        let entry = resolve(t, &mut staged, key)?;
                        let fields = t
                            .get_arr(entry, fields_fld)
                            .expect("entries always carry a fields array");
                        t.arr_set(fields, usize::from(*index), *value);
                    }
                }
            }
            Ok(())
        })?;
        for (key, action) in &staged {
            match action {
                Some(entry) => h.set_root_typed(key, *entry)?,
                None => {
                    h.remove_root(key);
                }
            }
        }
        Ok(Response::status(Status::Ok))
    });
    match applied {
        Ok(resp) if resp.status == Status::Ok => ack_durable(inner, shard, resp),
        Ok(resp) => resp,
        Err(e) => Response::err(e.to_string()),
    }
}

/// Runs a write section; on [`PjhError::HeapFull`] collects the shard
/// (reclaiming dead entries and replaced values) and retries. The auto
/// collector goes first — its incremental cycle also refills the
/// allocator's free lists — and only if the shard is still full does a
/// stop-the-world full compaction run.
fn with_gc_retry<T>(
    handle: &HeapHandle,
    mut f: impl FnMut(&mut espresso_core::Pjh) -> Result<T, PjhError>,
) -> Result<T, PjhError> {
    match handle.with_mut(&mut f) {
        Err(PjhError::HeapFull { .. }) => {
            handle.with_mut(|h| h.gc(&[]).map(|_| ()))?;
            match handle.with_mut(&mut f) {
                Err(PjhError::HeapFull { .. }) => {
                    handle.with_mut(|h| h.gc_full(&[]).map(|_| ()))?;
                    handle.with_mut(&mut f)
                }
                other => other,
            }
        }
        other => other,
    }
}

fn render_stats(inner: &Arc<Inner>) -> String {
    use std::fmt::Write as _;
    let c = &inner.counters;
    let mut out = String::new();
    let _ = writeln!(out, "version={PROTOCOL_VERSION}");
    let _ = writeln!(out, "shards={}", inner.heap.num_shards());
    let _ = writeln!(out, "uptime_ms={}", inner.started.elapsed().as_millis());
    let _ = writeln!(out, "max_value_bytes={MAX_VALUE}");
    let _ = writeln!(out, "max_key_bytes={MAX_KEY}");
    let _ = writeln!(out, "num_fields={NUM_FIELDS}");
    let _ = writeln!(out, "max_pending={}", inner.config.max_pending);
    let _ = writeln!(
        out,
        "conns_open={}",
        c.conns_opened.load(Ordering::Relaxed) - c.conns_closed.load(Ordering::Relaxed)
    );
    for (name, v) in [
        ("ops_ping", &c.pings),
        ("ops_get", &c.gets),
        ("ops_set", &c.sets),
        ("ops_del", &c.dels),
        ("ops_fget", &c.fgets),
        ("ops_fset", &c.fsets),
        ("ops_txn", &c.txns),
        ("ops_scan", &c.scans),
        ("ops_stats", &c.stats),
        ("busy", &c.busy),
        ("errors", &c.errors),
        ("bad_frames", &c.bad_frames),
    ] {
        let _ = writeln!(out, "{name}={}", v.load(Ordering::Relaxed));
    }
    let (mut drains, mut acked) = (0u64, 0u64);
    for committer in &inner.committers {
        let (d, a) = committer.drains_and_acked();
        drains += d;
        acked += a;
    }
    let _ = writeln!(out, "group_drains={drains}");
    let _ = writeln!(out, "group_acked={acked}");
    for i in 0..inner.heap.num_shards() {
        let h = inner.heap.handle(i);
        let index_len = inner.indexes[i].len(&h.read()).unwrap_or(0);
        let _ = writeln!(
            out,
            "shard{i}.sealed={} shard{i}.durable={} shard{i}.pending={} shard{i}.flush_paused={} \
             shard{i}.index_len={index_len}",
            h.sealed_epoch(),
            h.durable_epoch(),
            h.pending_commits(),
            h.flush_paused()
        );
        let s = h.heap_stats();
        let _ = writeln!(
            out,
            "shard{i}.bump_top_words={} shard{i}.free_list_slots={} \
             shard{i}.free_list_words={} shard{i}.deferred_slots={} \
             shard{i}.reused_slots={} shard{i}.free_regions={} \
             shard{i}.gc={} shard{i}.gc_full={}",
            s.bump_top_words,
            s.free_list_slots,
            s.free_list_words,
            s.deferred_slots,
            s.reused_slots,
            s.free_regions,
            s.gc_count,
            s.gc_full_count
        );
    }
    out
}
