//! End-to-end tests for espresso-server over real TCP connections:
//! basic operations, transaction atomicity and cross-shard rejection,
//! backpressure under a paused flush pipeline, group-commit coalescing,
//! and persistence across a server restart.

use std::time::Duration;

use espresso_server::client::Client;
use espresso_server::protocol::{Request, Status, TxnOp, NUM_FIELDS};
use espresso_server::server::{Server, ServerConfig, ServerHandle};

fn start(config: ServerConfig) -> ServerHandle {
    Server::start(config).expect("start server")
}

fn small() -> ServerConfig {
    ServerConfig {
        shards: 2,
        shard_bytes: 4 << 20,
        ..ServerConfig::default()
    }
}

#[test]
fn basic_ops_roundtrip_over_the_wire() {
    let handle = start(small());
    let mut c = Client::connect(handle.addr()).expect("connect");

    assert!(c.ping().unwrap());
    assert_eq!(c.get("missing").unwrap(), None);
    assert!(!c.del("missing").unwrap());

    // Raw values: empty, unaligned, and multi-word sizes all roundtrip.
    for value in [&b""[..], &b"x"[..], &b"123456789"[..], &[7u8; 4096][..]] {
        c.set("k", value).unwrap();
        assert_eq!(c.get("k").unwrap().as_deref(), Some(value));
    }
    assert!(c.del("k").unwrap());
    assert_eq!(c.get("k").unwrap(), None);

    // Typed fields: unset slots read 0, every slot is addressable, and
    // fields coexist with the raw value.
    c.set("typed", b"payload").unwrap();
    assert_eq!(c.fget("typed", 0).unwrap(), Some(0));
    for i in 0..NUM_FIELDS as u8 {
        c.fset("typed", i, u64::from(i) * 1000 + 7).unwrap();
    }
    for i in 0..NUM_FIELDS as u8 {
        assert_eq!(c.fget("typed", i).unwrap(), Some(u64::from(i) * 1000 + 7));
    }
    assert_eq!(c.get("typed").unwrap().as_deref(), Some(&b"payload"[..]));
    // FSET may create an entry with no raw value: FGET sees it, GET does not.
    c.fset("fields-only", 3, 42).unwrap();
    assert_eq!(c.fget("fields-only", 3).unwrap(), Some(42));
    assert_eq!(c.get("fields-only").unwrap(), None);
    // Out-of-range field indexes are errors, not panics.
    assert!(c.fset("typed", NUM_FIELDS as u8, 1).is_err());

    let stats = c.stats().unwrap();
    assert!(stats.contains("shards=2"), "stats:\n{stats}");
    assert!(stats.contains("ops_set="), "stats:\n{stats}");

    c.shutdown().unwrap();
    handle.wait();
}

/// Keys in `prefix0..` that route to the wanted shard (in-process peek at
/// the routing hash; clients learn it only via the TXN error).
fn keys_on_shard(handle: &ServerHandle, shard: usize, n: usize, prefix: &str) -> Vec<String> {
    (0..)
        .map(|i| format!("{prefix}{i}"))
        .filter(|k| handle.heap().shard_of(k) == shard)
        .take(n)
        .collect()
}

#[test]
fn txn_is_atomic_within_a_shard_and_rejects_cross_shard_key_sets() {
    let handle = start(small());
    let mut c = Client::connect(handle.addr()).expect("connect");

    let same = keys_on_shard(&handle, 0, 3, "t");
    c.set(&same[2], b"doomed").unwrap();
    c.txn(vec![
        TxnOp::Set {
            key: same[0].clone(),
            value: b"first".to_vec(),
        },
        TxnOp::FSet {
            key: same[1].clone(),
            index: 1,
            value: 99,
        },
        TxnOp::Del {
            key: same[2].clone(),
        },
    ])
    .unwrap();
    assert_eq!(c.get(&same[0]).unwrap().as_deref(), Some(&b"first"[..]));
    assert_eq!(c.fget(&same[1], 1).unwrap(), Some(99));
    assert_eq!(c.get(&same[2]).unwrap(), None);

    // A key set spanning shards is refused with ERR and applies nothing.
    let other = keys_on_shard(&handle, 1, 1, "x");
    let resp = c
        .request(&Request::Txn {
            ops: vec![
                TxnOp::Set {
                    key: same[0].clone(),
                    value: b"second".to_vec(),
                },
                TxnOp::Set {
                    key: other[0].clone(),
                    value: b"other-shard".to_vec(),
                },
            ],
        })
        .unwrap();
    assert_eq!(resp.status, Status::Err);
    assert!(String::from_utf8_lossy(&resp.payload).contains("cross-shard"));
    assert_eq!(c.get(&same[0]).unwrap().as_deref(), Some(&b"first"[..]));
    assert_eq!(c.get(&other[0]).unwrap(), None);

    // Empty transactions are errors too.
    let resp = c.request(&Request::Txn { ops: vec![] }).unwrap();
    assert_eq!(resp.status, Status::Err);

    // Sub-ops apply in order: Del-then-Set leaves a fresh entry (typed
    // fields reset, new value live), Set-then-Del leaves the key gone.
    c.fset(&same[0], 2, 5).unwrap();
    c.txn(vec![
        TxnOp::Del {
            key: same[0].clone(),
        },
        TxnOp::Set {
            key: same[0].clone(),
            value: b"reborn".to_vec(),
        },
    ])
    .unwrap();
    assert_eq!(c.get(&same[0]).unwrap().as_deref(), Some(&b"reborn"[..]));
    assert_eq!(c.fget(&same[0], 2).unwrap(), Some(0));
    c.txn(vec![
        TxnOp::Set {
            key: same[1].clone(),
            value: b"doomed".to_vec(),
        },
        TxnOp::Del {
            key: same[1].clone(),
        },
    ])
    .unwrap();
    assert_eq!(c.get(&same[1]).unwrap(), None);

    handle.stop_and_wait();
}

#[test]
fn paused_flush_pipeline_yields_busy_and_reads_keep_flowing() {
    let handle = start(ServerConfig {
        shards: 2,
        shard_bytes: 4 << 20,
        max_pending: 2,
        commit_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(handle.addr()).expect("connect");

    c.set("stable", b"before-pause").unwrap();
    c.flushctl(true).unwrap();

    // Writes now time out or are refused at admission: every answer is
    // definitive (BUSY), no connection hangs, no unbounded queueing.
    let mut saw_busy = 0;
    for i in 0..10 {
        let resp = c
            .request(&Request::Set {
                key: format!("paused-{i}"),
                value: b"v".to_vec(),
            })
            .unwrap();
        assert_ne!(resp.status, Status::Ok, "write acked while flush is paused");
        if resp.status == Status::Busy {
            saw_busy += 1;
        }
    }
    assert!(saw_busy > 0, "paused pipeline never answered BUSY");

    // Lock-free reads ride through the pause.
    assert_eq!(
        c.get("stable").unwrap().as_deref(),
        Some(&b"before-pause"[..])
    );

    // Resume: writes become durable again (retry the admission window).
    c.flushctl(false).unwrap();
    let mut recovered = false;
    for _ in 0..50 {
        if c.set("after-resume", b"v").is_ok() {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(recovered, "writes never recovered after resume");

    c.shutdown().unwrap();
    handle.wait();
}

#[test]
fn concurrent_writers_coalesce_into_shared_epoch_seals() {
    let handle = start(ServerConfig {
        shards: 1,
        shard_bytes: 8 << 20,
        commit_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    const WRITERS: usize = 8;
    const OPS: usize = 25;
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for i in 0..OPS {
                    c.set(&format!("w{w}-k{i}"), b"value").expect("durable set");
                }
            });
        }
    });
    let mut c = Client::connect(addr).expect("connect");
    let stats = c.stats().unwrap();
    let field = |name: &str| -> u64 {
        stats
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name}=")))
            .unwrap_or_else(|| panic!("missing {name} in stats:\n{stats}"))
            .trim()
            .parse()
            .unwrap()
    };
    let drains = field("group_drains");
    let acked = field("group_acked");
    assert_eq!(acked, (WRITERS * OPS) as u64);
    assert!(
        drains < acked,
        "no coalescing: {drains} epoch seals for {acked} acked writes"
    );
    c.shutdown().unwrap();
    handle.wait();
}

#[test]
fn data_survives_a_server_restart_on_a_persistent_dir() {
    let dir = std::env::temp_dir().join(format!("espresso-server-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let config = ServerConfig {
        shards: 2,
        shard_bytes: 4 << 20,
        dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    let handle = start(config.clone());
    let mut c = Client::connect(handle.addr()).expect("connect");
    c.set("persistent", b"survives restarts").unwrap();
    c.fset("persistent", 2, 777).unwrap();
    c.shutdown().unwrap();
    handle.wait();

    let handle = start(config);
    let mut c = Client::connect(handle.addr()).expect("connect");
    assert_eq!(
        c.get("persistent").unwrap().as_deref(),
        Some(&b"survives restarts"[..])
    );
    assert_eq!(c.fget("persistent", 2).unwrap(), Some(777));
    handle.stop_and_wait();
    std::fs::remove_dir_all(&dir).unwrap();
}
