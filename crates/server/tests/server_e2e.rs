//! End-to-end tests for espresso-server over real TCP connections:
//! basic operations, transaction atomicity and cross-shard rejection,
//! backpressure under a paused flush pipeline, group-commit coalescing,
//! and persistence across a server restart.

use std::time::Duration;

use espresso_server::client::Client;
use espresso_server::protocol::{Request, Status, TxnOp, NUM_FIELDS};
use espresso_server::server::{Server, ServerConfig, ServerHandle};

fn start(config: ServerConfig) -> ServerHandle {
    Server::start(config).expect("start server")
}

fn small() -> ServerConfig {
    ServerConfig {
        shards: 2,
        shard_bytes: 4 << 20,
        ..ServerConfig::default()
    }
}

#[test]
fn basic_ops_roundtrip_over_the_wire() {
    let handle = start(small());
    let mut c = Client::connect(handle.addr()).expect("connect");

    assert!(c.ping().unwrap());
    assert_eq!(c.get("missing").unwrap(), None);
    assert!(!c.del("missing").unwrap());

    // Raw values: empty, unaligned, and multi-word sizes all roundtrip.
    for value in [&b""[..], &b"x"[..], &b"123456789"[..], &[7u8; 4096][..]] {
        c.set("k", value).unwrap();
        assert_eq!(c.get("k").unwrap().as_deref(), Some(value));
    }
    assert!(c.del("k").unwrap());
    assert_eq!(c.get("k").unwrap(), None);

    // Typed fields: unset slots read 0, every slot is addressable, and
    // fields coexist with the raw value.
    c.set("typed", b"payload").unwrap();
    assert_eq!(c.fget("typed", 0).unwrap(), Some(0));
    for i in 0..NUM_FIELDS as u8 {
        c.fset("typed", i, u64::from(i) * 1000 + 7).unwrap();
    }
    for i in 0..NUM_FIELDS as u8 {
        assert_eq!(c.fget("typed", i).unwrap(), Some(u64::from(i) * 1000 + 7));
    }
    assert_eq!(c.get("typed").unwrap().as_deref(), Some(&b"payload"[..]));
    // FSET may create an entry with no raw value: FGET sees it, GET does not.
    c.fset("fields-only", 3, 42).unwrap();
    assert_eq!(c.fget("fields-only", 3).unwrap(), Some(42));
    assert_eq!(c.get("fields-only").unwrap(), None);
    // Out-of-range field indexes are errors, not panics.
    assert!(c.fset("typed", NUM_FIELDS as u8, 1).is_err());

    let stats = c.stats().unwrap();
    assert!(stats.contains("shards=2"), "stats:\n{stats}");
    assert!(stats.contains("ops_set="), "stats:\n{stats}");

    c.shutdown().unwrap();
    handle.wait();
}

/// Keys in `prefix0..` that route to the wanted shard (in-process peek at
/// the routing hash; clients learn it only via the TXN error).
fn keys_on_shard(handle: &ServerHandle, shard: usize, n: usize, prefix: &str) -> Vec<String> {
    (0..)
        .map(|i| format!("{prefix}{i}"))
        .filter(|k| handle.heap().shard_of(k) == shard)
        .take(n)
        .collect()
}

#[test]
fn txn_is_atomic_within_a_shard_and_rejects_cross_shard_key_sets() {
    let handle = start(small());
    let mut c = Client::connect(handle.addr()).expect("connect");

    let same = keys_on_shard(&handle, 0, 3, "t");
    c.set(&same[2], b"doomed").unwrap();
    c.txn(vec![
        TxnOp::Set {
            key: same[0].clone(),
            value: b"first".to_vec(),
        },
        TxnOp::FSet {
            key: same[1].clone(),
            index: 1,
            value: 99,
        },
        TxnOp::Del {
            key: same[2].clone(),
        },
    ])
    .unwrap();
    assert_eq!(c.get(&same[0]).unwrap().as_deref(), Some(&b"first"[..]));
    assert_eq!(c.fget(&same[1], 1).unwrap(), Some(99));
    assert_eq!(c.get(&same[2]).unwrap(), None);

    // A key set spanning shards is refused with ERR and applies nothing.
    let other = keys_on_shard(&handle, 1, 1, "x");
    let resp = c
        .request(&Request::Txn {
            ops: vec![
                TxnOp::Set {
                    key: same[0].clone(),
                    value: b"second".to_vec(),
                },
                TxnOp::Set {
                    key: other[0].clone(),
                    value: b"other-shard".to_vec(),
                },
            ],
        })
        .unwrap();
    assert_eq!(resp.status, Status::Err);
    assert!(String::from_utf8_lossy(&resp.payload).contains("cross-shard"));
    assert_eq!(c.get(&same[0]).unwrap().as_deref(), Some(&b"first"[..]));
    assert_eq!(c.get(&other[0]).unwrap(), None);

    // Empty transactions are errors too.
    let resp = c.request(&Request::Txn { ops: vec![] }).unwrap();
    assert_eq!(resp.status, Status::Err);

    // Sub-ops apply in order: Del-then-Set leaves a fresh entry (typed
    // fields reset, new value live), Set-then-Del leaves the key gone.
    c.fset(&same[0], 2, 5).unwrap();
    c.txn(vec![
        TxnOp::Del {
            key: same[0].clone(),
        },
        TxnOp::Set {
            key: same[0].clone(),
            value: b"reborn".to_vec(),
        },
    ])
    .unwrap();
    assert_eq!(c.get(&same[0]).unwrap().as_deref(), Some(&b"reborn"[..]));
    assert_eq!(c.fget(&same[0], 2).unwrap(), Some(0));
    c.txn(vec![
        TxnOp::Set {
            key: same[1].clone(),
            value: b"doomed".to_vec(),
        },
        TxnOp::Del {
            key: same[1].clone(),
        },
    ])
    .unwrap();
    assert_eq!(c.get(&same[1]).unwrap(), None);

    handle.stop_and_wait();
}

#[test]
fn scan_serves_ordered_ranges_over_the_index() {
    let handle = start(ServerConfig {
        shards: 1,
        shard_bytes: 8 << 20,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(handle.addr()).expect("connect");

    for k in ["delta", "alpha", "echo", "bravo", "charlie"] {
        c.set(k, k.to_uppercase().as_bytes()).unwrap();
    }
    // Full scan: every key, ascending, values intact.
    let page = c.scan(0, "", "", 100).unwrap();
    assert!(!page.truncated);
    let got: Vec<&str> = page.items.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(got, ["alpha", "bravo", "charlie", "delta", "echo"]);
    assert_eq!(page.items[0].1, b"ALPHA");

    // Half-open range [bravo, delta).
    let page = c.scan(0, "bravo", "delta", 100).unwrap();
    let got: Vec<&str> = page.items.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(got, ["bravo", "charlie"]);

    // A limit pages through the range; resuming just past the last
    // returned key continues without overlap or gaps.
    let first = c.scan(0, "", "", 2).unwrap();
    assert!(first.truncated);
    assert_eq!(first.items.len(), 2);
    let resume = format!("{}\0", first.items[1].0);
    let rest = c.scan(0, &resume, "", 100).unwrap();
    assert!(!rest.truncated);
    assert_eq!(first.items.len() + rest.items.len(), 5);

    // Field-only entries hold no value and are skipped, mirroring GET.
    c.fset("fields-only", 0, 9).unwrap();
    let page = c.scan(0, "", "", 100).unwrap();
    assert!(page.items.iter().all(|(k, _)| k != "fields-only"));

    // DEL removes a key from scans; a TXN's Del+Set of one key keeps it
    // visible with the new value, and its plain Del hides the key.
    assert!(c.del("charlie").unwrap());
    let page = c.scan(0, "", "", 100).unwrap();
    assert!(page.items.iter().all(|(k, _)| k != "charlie"));
    c.txn(vec![
        TxnOp::Del {
            key: "alpha".into(),
        },
        TxnOp::Set {
            key: "alpha".into(),
            value: b"reborn".to_vec(),
        },
        TxnOp::Del {
            key: "bravo".into(),
        },
    ])
    .unwrap();
    let page = c.scan(0, "", "", 100).unwrap();
    let got: Vec<&str> = page.items.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(got, ["alpha", "delta", "echo"]);
    assert_eq!(page.items[0].1, b"reborn");

    // Out-of-range shards are well-formed errors, not hangs or panics.
    assert!(c.scan(9, "", "", 10).is_err());

    let stats = c.stats().unwrap();
    assert!(stats.contains("ops_scan="), "stats:\n{stats}");
    // 4 = alpha, delta, echo, plus the field-only entry (indexed even
    // though scans skip it for holding no value).
    assert!(stats.contains("shard0.index_len=4"), "stats:\n{stats}");

    c.shutdown().unwrap();
    handle.wait();
}

#[test]
fn paused_flush_pipeline_yields_busy_and_reads_keep_flowing() {
    let handle = start(ServerConfig {
        shards: 2,
        shard_bytes: 4 << 20,
        max_pending: 2,
        commit_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(handle.addr()).expect("connect");

    c.set("stable", b"before-pause").unwrap();
    c.flushctl(true).unwrap();

    // Writes now time out or are refused at admission: every answer is
    // definitive (BUSY), no connection hangs, no unbounded queueing.
    let mut saw_busy = 0;
    for i in 0..10 {
        let resp = c
            .request(&Request::Set {
                key: format!("paused-{i}"),
                value: b"v".to_vec(),
            })
            .unwrap();
        assert_ne!(resp.status, Status::Ok, "write acked while flush is paused");
        if resp.status == Status::Busy {
            saw_busy += 1;
        }
    }
    assert!(saw_busy > 0, "paused pipeline never answered BUSY");

    // Lock-free reads — point lookups and index scans — ride through
    // the pause.
    assert_eq!(
        c.get("stable").unwrap().as_deref(),
        Some(&b"before-pause"[..])
    );
    let shard = handle.heap().shard_of("stable") as u16;
    let page = c.scan(shard, "", "", 10).unwrap();
    assert!(page.items.iter().any(|(k, _)| k == "stable"));

    // Resume: writes become durable again (retry the admission window).
    c.flushctl(false).unwrap();
    let mut recovered = false;
    for _ in 0..50 {
        if c.set("after-resume", b"v").is_ok() {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(recovered, "writes never recovered after resume");

    c.shutdown().unwrap();
    handle.wait();
}

#[test]
fn concurrent_writers_coalesce_into_shared_epoch_seals() {
    let handle = start(ServerConfig {
        shards: 1,
        shard_bytes: 8 << 20,
        commit_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    const WRITERS: usize = 8;
    const OPS: usize = 25;
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for i in 0..OPS {
                    c.set(&format!("w{w}-k{i}"), b"value").expect("durable set");
                }
            });
        }
    });
    let mut c = Client::connect(addr).expect("connect");
    let stats = c.stats().unwrap();
    let field = |name: &str| -> u64 {
        stats
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name}=")))
            .unwrap_or_else(|| panic!("missing {name} in stats:\n{stats}"))
            .trim()
            .parse()
            .unwrap()
    };
    let drains = field("group_drains");
    let acked = field("group_acked");
    assert_eq!(acked, (WRITERS * OPS) as u64);
    assert!(
        drains < acked,
        "no coalescing: {drains} epoch seals for {acked} acked writes"
    );
    c.shutdown().unwrap();
    handle.wait();
}

#[test]
fn data_survives_a_server_restart_on_a_persistent_dir() {
    let dir = std::env::temp_dir().join(format!("espresso-server-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let config = ServerConfig {
        shards: 2,
        shard_bytes: 4 << 20,
        dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    let handle = start(config.clone());
    let mut c = Client::connect(handle.addr()).expect("connect");
    c.set("persistent", b"survives restarts").unwrap();
    c.fset("persistent", 2, 777).unwrap();
    c.shutdown().unwrap();
    handle.wait();

    let handle = start(config);
    let mut c = Client::connect(handle.addr()).expect("connect");
    assert_eq!(
        c.get("persistent").unwrap().as_deref(),
        Some(&b"survives restarts"[..])
    );
    assert_eq!(c.fget("persistent", 2).unwrap(), Some(777));
    // The secondary index is persistent state too: scans work on the
    // reopened heap without any rebuild.
    let mut scanned = Vec::new();
    for shard in 0..2 {
        scanned.extend(c.scan(shard, "", "", 10).unwrap().items);
    }
    assert_eq!(
        scanned,
        vec![("persistent".to_string(), b"survives restarts".to_vec())]
    );
    handle.stop_and_wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn loadgen_scan_mix_reports_scan_latencies() {
    use espresso_server::load::{run_load, LoadConfig};

    let handle = start(small());
    let report = run_load(&LoadConfig {
        addr: handle.addr(),
        conns: 2,
        ops: 400,
        read_pct: 50,
        keys_per_conn: 32,
        value_len: 24,
        zipf_theta: 0.0,
        check: true,
        scan_pct: 20,
        scan_limit: 16,
        ..LoadConfig::default()
    })
    .expect("load run");
    assert_eq!(report.errors, 0, "report: {report:?}");
    assert_eq!(report.check_failures, 0, "report: {report:?}");
    // ~20% of 400 ops scan; the band is wide because the mix is drawn.
    assert!(
        report.scans_done > 30 && report.scans_done < 150,
        "scans_done = {}",
        report.scans_done
    );
    // Writes happened before most scans, so result sets are non-empty
    // and capped by the page limit.
    assert!(report.scan_items > 0, "report: {report:?}");
    assert!(report.scan_p99_us >= report.scan_p50_us);

    let mut c = Client::connect(handle.addr()).expect("connect");
    c.shutdown().unwrap();
    handle.wait();
}
