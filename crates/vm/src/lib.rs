//! The unified Espresso VM: one runtime over both heaps (§3).
//!
//! [`Vm`] binds the volatile generational heap (`espresso-runtime`) and the
//! Persistent Java Heap (`espresso-core`) behind a single object API:
//! `new` allocates in DRAM, `pnew` in NVM (§3.2), and objects of the same
//! logical class may live in both spaces at once.
//!
//! That duality is exactly what breaks stock class resolution — a constant
//! pool keeps *one* resolved Klass per class symbol, so resolving the
//! persistent Klass invalidates the volatile one and a redundant cast
//! throws (Figure 10). The VM reproduces both behaviours:
//! [`Vm::checkcast_strict`] models the stock JVM and fails on the Figure 10
//! program, while [`Vm::checkcast`] applies the paper's **alias Klass**
//! extension (two Klasses are aliases when they are logically the same
//! class stored in different spaces) and accepts it.
//!
//! The VM also owns cross-heap GC choreography (§3.4): DRAM-held NVM
//! pointers are passed to the persistent collector as roots (and patched
//! afterwards from its relocation table), and NVM-held DRAM pointers are
//! roots for the scavenger / full collector symmetrically.
//!
//! # Example
//!
//! ```
//! use espresso_vm::{Vm, VmConfig};
//! use espresso_object::FieldDesc;
//!
//! # fn main() -> Result<(), espresso_vm::VmError> {
//! let mut vm = Vm::with_persistent_heap(VmConfig::small(), 8 << 20)?;
//! vm.define_class("Person", vec![FieldDesc::prim("id"), FieldDesc::reference("name")])?;
//!
//! let a = vm.new_instance("Person")?;   // DRAM
//! let b = vm.pnew_instance("Person")?;  // NVM
//! assert!(vm.instance_of(a, "Person"));
//! assert!(vm.instance_of(b, "Person"));
//! vm.checkcast(a, "Person")?;           // alias-aware: fine
//! # Ok(())
//! # }
//! ```

mod vm;

pub use vm::{Vm, VmConfig, VmError};

/// Result alias for VM operations.
pub type Result<T> = std::result::Result<T, VmError>;
