//! The `Vm` type: class resolution, dual-heap allocation, GC choreography.

use std::collections::HashMap;
use std::fmt;

use espresso_core::{GcReport, Pjh, PjhConfig, PjhError};
use espresso_nvm::{NvmConfig, NvmDevice};
use espresso_object::{FieldDesc, KlassId, Ref, Space};
use espresso_runtime::{GcResult, Handle, HeapError, VolatileHeap, VolatileHeapConfig};

/// Errors surfaced by VM operations.
#[derive(Debug)]
pub enum VmError {
    /// The class name was never defined via [`Vm::define_class`].
    UnknownClass {
        /// The unresolved name.
        name: String,
    },
    /// A persistent operation was attempted with no PJH attached.
    NoPersistentHeap,
    /// A checked cast failed.
    ClassCast {
        /// The class the cast demanded.
        expected: String,
        /// The class the object actually has.
        found: String,
    },
    /// Volatile-heap failure.
    Heap(HeapError),
    /// Persistent-heap failure.
    Pjh(PjhError),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::UnknownClass { name } => write!(f, "unknown class {name}"),
            VmError::NoPersistentHeap => write!(f, "no persistent heap attached"),
            VmError::ClassCast { expected, found } => {
                write!(
                    f,
                    "ClassCastException: {found} cannot be cast to {expected}"
                )
            }
            VmError::Heap(e) => write!(f, "volatile heap: {e}"),
            VmError::Pjh(e) => write!(f, "persistent heap: {e}"),
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::Heap(e) => Some(e),
            VmError::Pjh(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeapError> for VmError {
    fn from(e: HeapError) -> Self {
        VmError::Heap(e)
    }
}

impl From<PjhError> for VmError {
    fn from(e: PjhError) -> Self {
        VmError::Pjh(e)
    }
}

/// VM construction parameters.
#[derive(Debug, Clone, Default)]
pub struct VmConfig {
    /// Volatile heap sizing.
    pub volatile: VolatileHeapConfig,
    /// Persistent heap parameters (used when a PJH is created through the
    /// VM).
    pub pjh: PjhConfig,
}

impl VmConfig {
    /// Small heaps for tests.
    pub fn small() -> Self {
        VmConfig {
            volatile: VolatileHeapConfig::small(),
            pjh: PjhConfig::small(),
        }
    }
}

/// A constant-pool slot: the single resolved Klass the stock JVM keeps per
/// class symbol (§3.2). `checkcast_strict` consults this to reproduce the
/// Figure 10 ClassCastException.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Resolved {
    space: Space,
    kid: KlassId,
}

/// The unified VM. See the [crate docs](crate) for an example.
pub struct Vm {
    volatile: VolatileHeap,
    pjh: Option<Pjh>,
    class_defs: HashMap<String, Vec<FieldDesc>>,
    constant_pool: HashMap<String, Resolved>,
}

impl fmt::Debug for Vm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vm")
            .field("classes", &self.class_defs.len())
            .field("persistent_heap", &self.pjh.is_some())
            .finish()
    }
}

impl Vm {
    /// A VM with only the volatile heap.
    pub fn new(config: VmConfig) -> Vm {
        Vm {
            volatile: VolatileHeap::new(config.volatile),
            pjh: None,
            class_defs: HashMap::new(),
            constant_pool: HashMap::new(),
        }
    }

    /// A VM with a freshly created persistent heap of `pjh_bytes` on a new
    /// simulated device.
    ///
    /// # Errors
    ///
    /// Heap-formatting errors.
    pub fn with_persistent_heap(config: VmConfig, pjh_bytes: usize) -> crate::Result<Vm> {
        let dev = NvmDevice::new(NvmConfig::with_size(pjh_bytes));
        let pjh = Pjh::create(dev, config.pjh.clone())?;
        let mut vm = Vm::new(config);
        vm.attach_pjh(pjh);
        Ok(vm)
    }

    /// Attaches (replaces) the persistent heap, re-registering every
    /// defined class against it.
    pub fn attach_pjh(&mut self, pjh: Pjh) -> Option<Pjh> {
        self.pjh.replace(pjh)
    }

    /// Detaches and returns the persistent heap.
    pub fn take_pjh(&mut self) -> Option<Pjh> {
        self.pjh.take()
    }

    /// The attached persistent heap, if any.
    pub fn pjh(&self) -> Option<&Pjh> {
        self.pjh.as_ref()
    }

    /// Mutable access to the attached persistent heap.
    pub fn pjh_mut(&mut self) -> Option<&mut Pjh> {
        self.pjh.as_mut()
    }

    /// The volatile heap.
    pub fn volatile(&self) -> &VolatileHeap {
        &self.volatile
    }

    /// Mutable access to the volatile heap.
    pub fn volatile_mut(&mut self) -> &mut VolatileHeap {
        &mut self.volatile
    }

    // ---- classes ----

    /// Defines a class usable from both `new` and `pnew`. Field names must
    /// be unique; layout must match any previously persisted definition.
    ///
    /// # Errors
    ///
    /// [`PjhError::KlassLayoutMismatch`] wrapped in [`VmError::Pjh`].
    pub fn define_class(&mut self, name: &str, fields: Vec<FieldDesc>) -> crate::Result<()> {
        self.volatile.register_instance(name, fields.clone());
        if let Some(pjh) = &mut self.pjh {
            pjh.register_instance(name, fields.clone())?;
        }
        self.class_defs.insert(name.to_string(), fields);
        Ok(())
    }

    fn volatile_kid(&mut self, name: &str) -> crate::Result<KlassId> {
        match self.volatile.registry().by_name(name) {
            Some(k) => Ok(k.id()),
            None => Err(VmError::UnknownClass {
                name: name.to_string(),
            }),
        }
    }

    fn persistent_kid(&mut self, name: &str) -> crate::Result<KlassId> {
        let fields = self
            .class_defs
            .get(name)
            .cloned()
            .ok_or_else(|| VmError::UnknownClass {
                name: name.to_string(),
            })?;
        let pjh = self.pjh.as_mut().ok_or(VmError::NoPersistentHeap)?;
        Ok(pjh.register_instance(name, fields)?)
    }

    // ---- allocation ----

    /// `new`: allocates in DRAM, collecting (with cross-heap roots) under
    /// pressure.
    ///
    /// # Errors
    ///
    /// [`VmError::UnknownClass`]; [`HeapError::OutOfMemory`] after GC.
    pub fn new_instance(&mut self, name: &str) -> crate::Result<Ref> {
        let kid = self.volatile_kid(name)?;
        let r = self.alloc_volatile(|h, _| h.alloc_instance_no_gc(kid))?;
        self.constant_pool.insert(
            name.to_string(),
            Resolved {
                space: Space::Volatile,
                kid,
            },
        );
        Ok(r)
    }

    /// `pnew`: allocates in NVM, collecting the persistent space (with
    /// DRAM-held roots) under pressure (§3.2).
    ///
    /// # Errors
    ///
    /// [`VmError::UnknownClass`], [`VmError::NoPersistentHeap`], persistent
    /// heap errors.
    pub fn pnew_instance(&mut self, name: &str) -> crate::Result<Ref> {
        let kid = self.persistent_kid(name)?;
        let r = self.alloc_persistent(|p| p.alloc_instance(kid))?;
        self.constant_pool.insert(
            name.to_string(),
            Resolved {
                space: Space::Persistent,
                kid,
            },
        );
        Ok(r)
    }

    /// `newarray`: a DRAM primitive (long) array.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] after GC.
    pub fn new_prim_array(&mut self, len: usize) -> crate::Result<Ref> {
        let kid = self.volatile.register_prim_array();
        self.alloc_volatile(|h, _| h.alloc_array_no_gc(kid, len))
    }

    /// `pnewarray`: an NVM primitive (long) array (§3.2).
    ///
    /// # Errors
    ///
    /// Persistent-heap errors.
    pub fn pnew_prim_array(&mut self, len: usize) -> crate::Result<Ref> {
        let pjh = self.pjh.as_mut().ok_or(VmError::NoPersistentHeap)?;
        let kid = pjh.register_prim_array();
        self.alloc_persistent(|p| p.alloc_array(kid, len))
    }

    /// `anewarray`: a DRAM object array.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] after GC.
    pub fn new_obj_array(&mut self, elem: &str, len: usize) -> crate::Result<Ref> {
        let kid = self.volatile.register_obj_array(elem);
        self.alloc_volatile(|h, _| h.alloc_array_no_gc(kid, len))
    }

    /// `panewarray`: an NVM object array (§3.2).
    ///
    /// # Errors
    ///
    /// Persistent-heap errors.
    pub fn pnew_obj_array(&mut self, elem: &str, len: usize) -> crate::Result<Ref> {
        let pjh = self.pjh.as_mut().ok_or(VmError::NoPersistentHeap)?;
        let kid = pjh.register_obj_array(elem);
        self.alloc_persistent(|p| p.alloc_array(kid, len))
    }

    fn alloc_volatile(
        &mut self,
        mut alloc: impl FnMut(&mut VolatileHeap, ()) -> espresso_runtime::Result<Ref>,
    ) -> crate::Result<Ref> {
        match alloc(&mut self.volatile, ()) {
            Ok(r) => Ok(r),
            Err(HeapError::OutOfMemory { .. }) => {
                self.gc_young();
                if let Ok(r) = alloc(&mut self.volatile, ()) {
                    return Ok(r);
                }
                self.gc_full()?;
                alloc(&mut self.volatile, ()).map_err(VmError::from)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn alloc_persistent(
        &mut self,
        mut alloc: impl FnMut(&mut Pjh) -> espresso_core::Result<Ref>,
    ) -> crate::Result<Ref> {
        let first = {
            let pjh = self.pjh.as_mut().ok_or(VmError::NoPersistentHeap)?;
            alloc(pjh)
        };
        match first {
            Ok(r) => Ok(r),
            Err(PjhError::HeapFull { .. }) => {
                self.gc_persistent()?;
                let pjh = self.pjh.as_mut().expect("checked above");
                alloc(pjh).map_err(VmError::from)
            }
            Err(e) => Err(e.into()),
        }
    }

    // ---- unified field access ----

    /// Reads raw field `index`, whichever heap holds the object.
    pub fn field(&self, r: Ref, index: usize) -> u64 {
        match r.space() {
            Space::Volatile => self.volatile.field(r, index),
            Space::Persistent => self
                .pjh
                .as_ref()
                .expect("persistent ref without pjh")
                .field(r, index),
        }
    }

    /// Writes raw field `index`.
    pub fn set_field(&mut self, r: Ref, index: usize, value: u64) {
        match r.space() {
            Space::Volatile => self.volatile.set_field(r, index, value),
            Space::Persistent => self
                .pjh
                .as_mut()
                .expect("persistent ref without pjh")
                .set_field(r, index, value),
        }
    }

    /// Reads reference field `index`.
    pub fn field_ref(&self, r: Ref, index: usize) -> Ref {
        Ref::from_raw(self.field(r, index))
    }

    /// Writes reference field `index`; cross-space stores are legal (§3.4)
    /// subject to the persistent heap's safety level.
    ///
    /// # Errors
    ///
    /// [`PjhError::SafetyViolation`] under type-based safety.
    pub fn set_field_ref(&mut self, r: Ref, index: usize, value: Ref) -> crate::Result<()> {
        match r.space() {
            Space::Volatile => {
                self.volatile.set_field_ref(r, index, value);
                Ok(())
            }
            Space::Persistent => Ok(self
                .pjh
                .as_mut()
                .expect("persistent ref without pjh")
                .set_field_ref(r, index, value)?),
        }
    }

    /// Array length.
    pub fn array_len(&self, r: Ref) -> usize {
        match r.space() {
            Space::Volatile => self.volatile.array_len(r),
            Space::Persistent => self
                .pjh
                .as_ref()
                .expect("persistent ref without pjh")
                .array_len(r),
        }
    }

    /// Array element read.
    pub fn array_get(&self, r: Ref, i: usize) -> u64 {
        match r.space() {
            Space::Volatile => self.volatile.array_get(r, i),
            Space::Persistent => self
                .pjh
                .as_ref()
                .expect("persistent ref without pjh")
                .array_get(r, i),
        }
    }

    /// Array element write (primitive).
    pub fn array_set(&mut self, r: Ref, i: usize, value: u64) {
        match r.space() {
            Space::Volatile => self.volatile.array_set(r, i, value),
            Space::Persistent => self
                .pjh
                .as_mut()
                .expect("persistent ref without pjh")
                .array_set(r, i, value),
        }
    }

    /// Array element read (reference).
    pub fn array_get_ref(&self, r: Ref, i: usize) -> Ref {
        Ref::from_raw(self.array_get(r, i))
    }

    /// Array element write (reference).
    ///
    /// # Errors
    ///
    /// [`PjhError::SafetyViolation`] under type-based safety.
    pub fn array_set_ref(&mut self, r: Ref, i: usize, value: Ref) -> crate::Result<()> {
        match r.space() {
            Space::Volatile => {
                self.volatile.array_set_ref(r, i, value);
                Ok(())
            }
            Space::Persistent => Ok(self
                .pjh
                .as_mut()
                .expect("persistent ref without pjh")
                .array_set_ref(r, i, value)?),
        }
    }

    /// Index of a named field of `r`'s class.
    pub fn field_index(&self, r: Ref, name: &str) -> Option<usize> {
        self.klass_arc(r).field_index(name)
    }

    fn klass_arc(&self, r: Ref) -> std::sync::Arc<espresso_object::Klass> {
        match r.space() {
            Space::Volatile => self.volatile.klass_of(r),
            Space::Persistent => self
                .pjh
                .as_ref()
                .expect("persistent ref without pjh")
                .klass_of(r),
        }
    }

    /// Name of the object's class.
    pub fn klass_name(&self, r: Ref) -> String {
        self.klass_arc(r).name().to_string()
    }

    // ---- type checks (§3.2) ----

    /// Alias-aware `instanceof`: volatile and persistent Klasses of one
    /// logical class are interchangeable.
    pub fn instance_of(&self, r: Ref, name: &str) -> bool {
        !r.is_null() && self.klass_arc(r).name() == name
    }

    /// Alias-aware `checkcast` — Espresso's extended type check.
    ///
    /// # Errors
    ///
    /// [`VmError::ClassCast`] when the logical classes differ.
    pub fn checkcast(&self, r: Ref, name: &str) -> crate::Result<()> {
        if self.instance_of(r, name) {
            Ok(())
        } else {
            Err(VmError::ClassCast {
                expected: name.to_string(),
                found: if r.is_null() {
                    "null".to_string()
                } else {
                    self.klass_name(r)
                },
            })
        }
    }

    /// Stock-JVM `checkcast`: compares the object's physical Klass against
    /// the single constant-pool resolution, reproducing the spurious
    /// ClassCastException of Figure 10 when the same class exists in both
    /// spaces.
    ///
    /// # Errors
    ///
    /// [`VmError::ClassCast`] whenever the physical Klasses differ — even
    /// for aliases of the same logical class.
    pub fn checkcast_strict(&mut self, r: Ref, name: &str) -> crate::Result<()> {
        let actual_kid = self.klass_arc(r).id();
        let actual = Resolved {
            space: r.space(),
            kid: actual_kid,
        };
        let slot = *self.constant_pool.entry(name.to_string()).or_insert(actual);
        if slot == actual && self.klass_arc(r).name() == name {
            Ok(())
        } else {
            Err(VmError::ClassCast {
                expected: name.to_string(),
                found: self.klass_name(r),
            })
        }
    }

    // ---- roots & handles ----

    /// `setRoot` on the persistent heap.
    ///
    /// # Errors
    ///
    /// [`VmError::NoPersistentHeap`]; name-table errors.
    pub fn set_root(&mut self, name: &str, r: Ref) -> crate::Result<()> {
        let pjh = self.pjh.as_mut().ok_or(VmError::NoPersistentHeap)?;
        Ok(pjh.set_root(name, r)?)
    }

    /// `getRoot` on the persistent heap.
    pub fn get_root(&self, name: &str) -> Option<Ref> {
        self.pjh.as_ref()?.get_root(name)
    }

    /// Pins a volatile object across collections.
    pub fn add_handle(&mut self, r: Ref) -> Handle {
        self.volatile.add_root(r)
    }

    /// Current value of a handle.
    pub fn handle(&self, h: Handle) -> Option<Ref> {
        self.volatile.root(h)
    }

    /// Releases a handle.
    pub fn remove_handle(&mut self, h: Handle) {
        self.volatile.remove_root(h)
    }

    // ---- persistence (§3.5) ----

    /// Persists one field of a persistent object; no-op for volatile
    /// objects.
    pub fn flush_field(&self, r: Ref, index: usize) {
        if r.is_persistent() {
            if let Some(pjh) = &self.pjh {
                pjh.flush_field(r, index);
            }
        }
    }

    /// Persists a whole persistent object; no-op for volatile objects.
    pub fn flush_object(&self, r: Ref) {
        if r.is_persistent() {
            if let Some(pjh) = &self.pjh {
                pjh.flush_object(r);
            }
        }
    }

    // ---- GC choreography (§3.4) ----

    /// Young collection with NVM-held DRAM pointers as extra roots; those
    /// NVM slots are patched afterwards.
    pub fn gc_young(&mut self) -> GcResult {
        let extra = self
            .pjh
            .as_ref()
            .map(|p| p.volatile_refs())
            .unwrap_or_default();
        let result = self.volatile.collect_young(&extra);
        self.patch_pjh_after_volatile_gc(&result);
        result
    }

    /// Full volatile collection, same root/patch protocol.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] if the live set exceeds the old space.
    pub fn gc_full(&mut self) -> crate::Result<GcResult> {
        let extra = self
            .pjh
            .as_ref()
            .map(|p| p.volatile_refs())
            .unwrap_or_default();
        let result = self.volatile.collect_full(&extra)?;
        self.patch_pjh_after_volatile_gc(&result);
        Ok(result)
    }

    fn patch_pjh_after_volatile_gc(&mut self, result: &GcResult) {
        if result.relocations.is_empty() {
            return;
        }
        if let Some(pjh) = &mut self.pjh {
            pjh.rewrite_refs(|r| {
                if r.is_volatile() {
                    match result.relocations.get(&r.addr()) {
                        Some(&new) => Ref::new(Space::Volatile, new),
                        None => r,
                    }
                } else {
                    r
                }
            });
        }
    }

    /// Persistent collection with DRAM-held NVM pointers as extra roots;
    /// volatile slots holding moved persistent objects are patched from
    /// the relocation table.
    ///
    /// # Errors
    ///
    /// [`VmError::NoPersistentHeap`]; device errors.
    pub fn gc_persistent(&mut self) -> crate::Result<GcReport> {
        let extra = self.volatile.persistent_refs();
        let pjh = self.pjh.as_mut().ok_or(VmError::NoPersistentHeap)?;
        let report = pjh.gc(&extra)?;
        if !report.relocations.is_empty() {
            self.volatile.rewrite_refs(|r| {
                if r.is_persistent() {
                    match report.relocations.get(&r.addr()) {
                        Some(&new) => Ref::new(Space::Persistent, new),
                        None => r,
                    }
                } else {
                    r
                }
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm() -> Vm {
        Vm::with_persistent_heap(VmConfig::small(), 4 << 20).unwrap()
    }

    fn define_person(vm: &mut Vm) {
        vm.define_class(
            "Person",
            vec![FieldDesc::prim("id"), FieldDesc::reference("name")],
        )
        .unwrap();
    }

    #[test]
    fn new_and_pnew_share_a_logical_class() {
        let mut vm = vm();
        define_person(&mut vm);
        let a = vm.new_instance("Person").unwrap();
        let b = vm.pnew_instance("Person").unwrap();
        assert_eq!(a.space(), Space::Volatile);
        assert_eq!(b.space(), Space::Persistent);
        assert_eq!(vm.klass_name(a), "Person");
        assert_eq!(vm.klass_name(b), "Person");
    }

    #[test]
    fn figure_10_strict_cast_throws_alias_cast_does_not() {
        let mut vm = vm();
        define_person(&mut vm);
        // Person a = new Person(...);
        let a = vm.new_instance("Person").unwrap();
        // Person b = pnew Person(...);  -- re-resolves the constant pool
        //                                  slot to the persistent Klass.
        let _b = vm.pnew_instance("Person").unwrap();
        // somefunc((Person) a);  -- stock JVM: ClassCastException!
        assert!(matches!(
            vm.checkcast_strict(a, "Person"),
            Err(VmError::ClassCast { .. })
        ));
        // Espresso's alias-aware check accepts the redundant cast.
        vm.checkcast(a, "Person").unwrap();
        assert!(vm.instance_of(a, "Person"));
    }

    #[test]
    fn strict_cast_still_rejects_truly_wrong_classes() {
        let mut vm = vm();
        define_person(&mut vm);
        vm.define_class("Car", vec![FieldDesc::prim("vin")])
            .unwrap();
        let c = vm.new_instance("Car").unwrap();
        assert!(matches!(
            vm.checkcast(c, "Person"),
            Err(VmError::ClassCast { .. })
        ));
        assert!(matches!(
            vm.checkcast_strict(c, "Person"),
            Err(VmError::ClassCast { .. })
        ));
    }

    #[test]
    fn mixed_space_references_work() {
        let mut vm = vm();
        define_person(&mut vm);
        let dram = vm.new_instance("Person").unwrap();
        vm.set_field(dram, 0, 7);
        let nvm = vm.pnew_instance("Person").unwrap();
        vm.set_field(nvm, 0, 8);
        // NVM -> DRAM pointer (legal at default safety, §3.4).
        vm.set_field_ref(nvm, 1, dram).unwrap();
        // DRAM -> NVM pointer.
        vm.set_field_ref(dram, 1, nvm).unwrap();
        assert_eq!(vm.field(vm.field_ref(nvm, 1), 0), 7);
        assert_eq!(vm.field(vm.field_ref(dram, 1), 0), 8);
    }

    #[test]
    fn volatile_gc_patches_nvm_held_pointers() {
        let mut vm = vm();
        define_person(&mut vm);
        let dram = vm.new_instance("Person").unwrap();
        vm.set_field(dram, 0, 123);
        let nvm = vm.pnew_instance("Person").unwrap();
        vm.set_field_ref(nvm, 1, dram).unwrap();
        // The DRAM object is reachable *only* from NVM. Churn through
        // several young collections.
        for _ in 0..5 {
            vm.gc_young();
        }
        let dram2 = vm.field_ref(nvm, 1);
        assert!(dram2.is_volatile());
        assert_eq!(
            vm.field(dram2, 0),
            123,
            "NVM-held DRAM pointer kept alive and patched"
        );
    }

    #[test]
    fn persistent_gc_patches_dram_held_pointers() {
        let mut vm = vm();
        define_person(&mut vm);
        let nvm = vm.pnew_instance("Person").unwrap();
        vm.set_field(nvm, 0, 321);
        vm.flush_object(nvm);
        let dram = vm.new_instance("Person").unwrap();
        vm.set_field_ref(dram, 1, nvm).unwrap();
        let h = vm.add_handle(dram);
        // Garbage in the persistent space, then collect it. The NVM object
        // is reachable only through DRAM.
        for _ in 0..100 {
            vm.pnew_instance("Person").unwrap();
        }
        let report = vm.gc_persistent().unwrap();
        assert_eq!(report.live_objects, 1);
        let dram = vm.handle(h).unwrap();
        let nvm2 = vm.field_ref(dram, 1);
        assert!(nvm2.is_persistent());
        assert_eq!(vm.field(nvm2, 0), 321);
        vm.pjh().unwrap().verify_integrity().unwrap();
    }

    #[test]
    fn pnew_collects_when_full_and_recovers_space() {
        let mut vm = vm();
        define_person(&mut vm);
        let keep = vm.pnew_instance("Person").unwrap();
        vm.set_field(keep, 0, 5);
        vm.flush_object(keep);
        vm.set_root("keep", keep).unwrap();
        // Allocate more garbage than the heap holds; since every object is
        // unreachable, auto-GC keeps reclaiming and pnew never fails.
        for _ in 0..200_000 {
            vm.pnew_instance("Person").unwrap();
        }
        let keep = vm.get_root("keep").unwrap();
        assert_eq!(vm.field(keep, 0), 5);
        assert!(vm.pjh().unwrap().gc_count() >= 1, "auto-GC ran");
    }

    #[test]
    fn volatile_allocation_pressure_auto_collects() {
        let mut vm = vm();
        define_person(&mut vm);
        for _ in 0..20_000 {
            vm.new_instance("Person").unwrap();
        }
        assert!(vm.volatile().stats().young_gcs > 0);
    }

    #[test]
    fn arrays_in_both_spaces() {
        let mut vm = vm();
        define_person(&mut vm);
        let va = vm.new_prim_array(4).unwrap();
        let pa = vm.pnew_prim_array(4).unwrap();
        vm.array_set(va, 0, 1);
        vm.array_set(pa, 0, 2);
        assert_eq!(vm.array_get(va, 0), 1);
        assert_eq!(vm.array_get(pa, 0), 2);
        let voa = vm.new_obj_array("Person", 2).unwrap();
        let poa = vm.pnew_obj_array("Person", 2).unwrap();
        let p = vm.pnew_instance("Person").unwrap();
        vm.array_set_ref(voa, 0, p).unwrap();
        vm.array_set_ref(poa, 1, p).unwrap();
        assert_eq!(vm.array_get_ref(voa, 0), p);
        assert_eq!(vm.array_get_ref(poa, 1), p);
    }

    #[test]
    fn unknown_class_errors() {
        let mut vm = vm();
        assert!(matches!(
            vm.new_instance("Ghost"),
            Err(VmError::UnknownClass { .. })
        ));
        assert!(matches!(
            vm.pnew_instance("Ghost"),
            Err(VmError::UnknownClass { .. })
        ));
    }

    #[test]
    fn no_pjh_errors() {
        let mut vm = Vm::new(VmConfig::small());
        vm.define_class("T", vec![FieldDesc::prim("x")]).unwrap();
        assert!(matches!(
            vm.pnew_instance("T"),
            Err(VmError::NoPersistentHeap)
        ));
        assert!(matches!(
            vm.set_root("r", Ref::NULL),
            Err(VmError::NoPersistentHeap)
        ));
    }

    #[test]
    fn field_index_by_name() {
        let mut vm = vm();
        define_person(&mut vm);
        let p = vm.pnew_instance("Person").unwrap();
        assert_eq!(vm.field_index(p, "id"), Some(0));
        assert_eq!(vm.field_index(p, "name"), Some(1));
        assert_eq!(vm.field_index(p, "ghost"), None);
    }
}
