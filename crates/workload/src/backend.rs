//! The [`Backend`] trait: one op vocabulary every persistence layer
//! implements, so a single trace replays identically against all of
//! them, plus the [`state_digest`] that proves two replays converged.
//!
//! # The shared entry model
//!
//! Every adapter exposes the server's KV data model (see
//! `crates/server/src/server.rs`): each key owns one *entry* holding an
//! optional byte value plus [`NUM_FIELDS`] u64 slots.
//! The contract every backend must honor, because the digest hashes
//! exactly this state:
//!
//! * `set` creates the entry if absent (fields all zero) and replaces
//!   only the value.
//! * `fset` creates the entry if absent, with **no** value.
//! * `get` on an entry without a value reports "not found", like the
//!   server's `GET` on a key that only ever saw `FSET`.
//! * `fget` answers for any existing entry (fields default to 0) and
//!   `None` only when the entry itself is absent.
//! * `del` removes the whole entry — value and fields.
//! * `txn` applies its parts to one key in order, atomically: `Del` then
//!   `Set` leaves a fresh entry; `Set` then `Del` leaves the key gone.
//! * `scan` answers the keys in `[start, end)` by lexicographic name
//!   (an empty bound is unbounded on that side) in ascending order, at
//!   most `limit` of them, **skipping valueless entries** — exactly the
//!   server `SCAN` semantics, so one trace's scans converge everywhere.

use crate::trace::TxnPart;
use crate::{WorkloadError, NUM_FIELDS};

/// The five persistence layers a trace can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Raw word-level `Pjh` API on a single managed heap.
    Raw,
    /// Typed-object sessions (`PObject` schema + `PRef`) on a single
    /// managed heap — the server's data path minus sharding and TCP.
    Typed,
    /// `ShardedHeap` with raw per-shard ops and fan-out commits.
    Sharded,
    /// The WAL-durable relational engine (`espresso-minidb`).
    Minidb,
    /// A live `espresso-server` over loopback TCP, driven through the
    /// blocking client.
    Server,
}

impl BackendKind {
    /// Every kind, in matrix display order.
    pub const ALL: [BackendKind; 5] = [
        BackendKind::Raw,
        BackendKind::Typed,
        BackendKind::Sharded,
        BackendKind::Minidb,
        BackendKind::Server,
    ];

    /// Stable lowercase name (CLI argument and report label).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Raw => "raw",
            BackendKind::Typed => "typed",
            BackendKind::Sharded => "sharded",
            BackendKind::Minidb => "minidb",
            BackendKind::Server => "server",
        }
    }

    /// Parses a CLI name.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Invalid`] naming the accepted spellings.
    pub fn parse(s: &str) -> Result<BackendKind, WorkloadError> {
        BackendKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                WorkloadError::Invalid(format!(
                    "unknown backend {s:?} (expected raw|typed|sharded|minidb|server)"
                ))
            })
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a crash preserves, which decides the expected post-recovery
/// state (see `crate::replay::durable_prefix`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// State becomes durable at `Commit` ops whose flush was awaited:
    /// a crash rolls back to the last such commit. The PJH-backed
    /// adapters.
    EpochCommit,
    /// Every op is WAL-durable before it returns: a crash preserves
    /// everything executed. minidb.
    PerOp,
}

/// One persistence layer under test. Keys are trace indices
/// (`0..key_space`); adapters map them through
/// [`key_name`](crate::trace::key_name) so on-heap root names match the
/// server's keyspace conventions.
pub trait Backend {
    /// Which adapter this is.
    fn kind(&self) -> BackendKind;

    /// Reads the value, `None` when the key is absent **or** its entry
    /// holds no value.
    fn get(&mut self, key: u32) -> Result<Option<Vec<u8>>, WorkloadError>;

    /// Writes the value, creating the entry if needed.
    fn set(&mut self, key: u32, value: &[u8]) -> Result<(), WorkloadError>;

    /// Removes the entry; reports whether it existed.
    fn del(&mut self, key: u32) -> Result<bool, WorkloadError>;

    /// Reads field `index`; `None` when the entry is absent.
    fn fget(&mut self, key: u32, index: u8) -> Result<Option<u64>, WorkloadError>;

    /// Writes field `index`, creating the entry (valueless) if needed.
    fn fset(&mut self, key: u32, index: u8, value: u64) -> Result<(), WorkloadError>;

    /// Applies parts to one key, in order, atomically.
    fn txn(&mut self, key: u32, parts: &[TxnPart]) -> Result<(), WorkloadError>;

    /// Range scan: entries whose key name lies in `[start, end)`
    /// (lexicographic; an empty string is unbounded on that side), in
    /// ascending key order, at most `limit`, valueless entries skipped.
    fn scan(
        &mut self,
        start: &str,
        end: &str,
        limit: u32,
    ) -> Result<Vec<(String, Vec<u8>)>, WorkloadError>;

    /// Seals a commit epoch; `wait` blocks until it is durable.
    /// Always-durable backends treat this as a no-op.
    fn commit(&mut self, wait: bool) -> Result<(), WorkloadError>;

    /// This backend's crash-durability granularity.
    fn durability(&self) -> Durability;

    /// Whether [`set_flush_paused`](Self::set_flush_paused) and
    /// [`crash_recover`](Self::crash_recover) work here. The TCP server
    /// adapter says no: its heap lives behind the socket, and pausing
    /// its pipeline would just turn acknowledged writes into `BUSY`.
    fn supports_faults(&self) -> bool {
        true
    }

    /// One-line allocator/GC statistics for the replay summary
    /// (`HeapStats::summary_line`), `None` where the layer exposes no
    /// heap internals (minidb, the TCP server).
    fn heap_stats(&self) -> Option<String> {
        None
    }

    /// Pauses (or resumes) the background flush pipeline, so commits
    /// sealed inside the window stay non-durable.
    fn set_flush_paused(&mut self, paused: bool) -> Result<(), WorkloadError>;

    /// Simulates a crash: discard everything non-durable, then recover
    /// from the persisted image. The backend must be usable afterwards.
    fn crash_recover(&mut self) -> Result<(), WorkloadError>;
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn feed(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Hashes the backend's full observable state: for every key in index
/// order, entry presence, the value (length-prefixed) or its absence,
/// and all [`NUM_FIELDS`] field slots. FNV-1a 64 —
/// two backends (or two runs) that replayed to the same state produce
/// the same digest, and that is the harness's convergence proof.
///
/// # Errors
///
/// Propagates backend read errors.
pub fn state_digest(backend: &mut dyn Backend, key_space: u32) -> Result<u64, WorkloadError> {
    let mut h = FNV_OFFSET;
    for key in 0..key_space {
        // Field 0 probes entry existence: `fget` answers for any live
        // entry, even one that never saw a `set`.
        match backend.fget(key, 0)? {
            None => feed(&mut h, &[0]),
            Some(_) => {
                feed(&mut h, &[1]);
                match backend.get(key)? {
                    None => feed(&mut h, &[0]),
                    Some(value) => {
                        feed(&mut h, &[1]);
                        feed(&mut h, &(value.len() as u32).to_be_bytes());
                        feed(&mut h, &value);
                    }
                }
                for index in 0..NUM_FIELDS as u8 {
                    let v = backend.fget(key, index)?.unwrap_or(0);
                    feed(&mut h, &v.to_be_bytes());
                }
            }
        }
    }
    Ok(h)
}

/// Running digest over every scan result set a replay observes.
///
/// The final-state digest alone cannot tell whether two backends *saw*
/// the same ranges mid-replay — a backend whose scans return garbage but
/// whose writes land would still converge. This folds each scan's query
/// (bounds and limit) and its full result list (keys and values, length-
/// prefixed) into one FNV-1a stream, so the matrix comparison also proves
/// every intermediate range observation agreed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanDigest {
    h: u64,
    scans: u64,
}

impl Default for ScanDigest {
    fn default() -> ScanDigest {
        ScanDigest::new()
    }
}

impl ScanDigest {
    /// An empty accumulator (no scans observed yet).
    pub fn new() -> ScanDigest {
        ScanDigest {
            h: FNV_OFFSET,
            scans: 0,
        }
    }

    /// Folds one scan — its query and its result set — into the digest.
    pub fn fold(&mut self, start: &str, end: &str, limit: u32, items: &[(String, Vec<u8>)]) {
        self.scans += 1;
        feed(&mut self.h, &(start.len() as u32).to_be_bytes());
        feed(&mut self.h, start.as_bytes());
        feed(&mut self.h, &(end.len() as u32).to_be_bytes());
        feed(&mut self.h, end.as_bytes());
        feed(&mut self.h, &limit.to_be_bytes());
        feed(&mut self.h, &(items.len() as u32).to_be_bytes());
        for (key, value) in items {
            feed(&mut self.h, &(key.len() as u32).to_be_bytes());
            feed(&mut self.h, key.as_bytes());
            feed(&mut self.h, &(value.len() as u32).to_be_bytes());
            feed(&mut self.h, value);
        }
    }

    /// Number of scans folded so far.
    pub fn scans(&self) -> u64 {
        self.scans
    }

    /// Combines a final-state digest with the accumulated scan digest.
    /// With no scans folded this is `state` unchanged, so scan-free
    /// replays (and every pre-v2 trace) keep their historical digests.
    pub fn combined(&self, state: u64) -> u64 {
        if self.scans == 0 {
            return state;
        }
        let mut h = FNV_OFFSET;
        feed(&mut h, &state.to_be_bytes());
        feed(&mut h, &self.scans.to_be_bytes());
        feed(&mut h, &self.h.to_be_bytes());
        h
    }
}
