//! The five [`Backend`] adapters, one per persistence layer, plus the
//! [`make_backend`] factory the CLI and tests build from.
//!
//! Each adapter maps the shared entry model (see [`crate::backend`])
//! onto its layer's native idiom:
//!
//! * [`RawBackend`] — word-level `Pjh` ops on one managed heap: entries
//!   are two-reference instances (`data`, `fields`) built with
//!   `alloc_instance`/`set_field_ref`, values are length-prefixed u64
//!   arrays, durability at `Commit` epochs.
//! * [`TypedBackend`] — the same heap driven through the typed-object
//!   layer (`PObject` schema, `PRef`, undo-logged `txn`), a faithful
//!   single-shard port of the server's `op_set`/`op_txn` data path.
//! * [`ShardedBackend`] — raw ops routed across a [`ShardedHeap`], with
//!   fan-out commits and per-shard crash recovery.
//! * [`MinidbBackend`] — one `kv` table in the WAL-durable relational
//!   engine; every statement is durable before it returns.
//! * [`ServerBackend`] — a real `espresso-server` on loopback TCP,
//!   driven through the blocking protocol client.
//!
//! The PJH-backed adapters own a unique on-disk heap directory (removed
//! on drop) so a crash can be simulated honestly: resume the flush
//! pipeline, abort whatever it queued, drop the manager, and reopen from
//! the image files — exactly the state a real process would find after
//! `kill -9`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use espresso_core::{
    HeapHandle, HeapManager, LoadOptions, Pjh, PjhConfig, PjhError, ShardedHeap, ShardedKlass,
};
use espresso_minidb::{ColType, Database, Value};
use espresso_nvm::{NvmConfig, NvmDevice};
use espresso_object::{ArrFld, FieldDesc, KlassId, PArr, PObject, PRef, Ref, Schema};
use espresso_server::client::Client;
use espresso_server::protocol::TxnOp;
use espresso_server::server::{Server, ServerConfig, ServerHandle};

use crate::backend::{Backend, BackendKind, Durability};
use crate::trace::{key_name, TxnPart};
use crate::{WorkloadError, NUM_FIELDS};

/// Heap bytes for the single-heap adapters.
const HEAP_BYTES: usize = 32 << 20;
/// Shards and per-shard bytes for the sharded and server adapters.
const SHARDS: usize = 4;
const SHARD_BYTES: usize = 16 << 20;
/// Heap name inside each adapter's private directory.
const HEAP_NAME: &str = "wl";

fn pjh_err(e: PjhError) -> WorkloadError {
    WorkloadError::Backend(format!("pjh: {e}"))
}

/// Name-table capacity: every key is a root, so size for the keyspace
/// with the same headroom the server defaults carry.
fn table_capacity(key_space: u32) -> usize {
    (8 << 10).max(4 * key_space as usize)
}

fn heap_config(key_space: u32) -> PjhConfig {
    PjhConfig {
        name_table_capacity: table_capacity(key_space),
        ..PjhConfig::default()
    }
}

/// A fresh directory under the system temp root; adapters remove it on
/// drop. Uniqueness comes from pid + a process-wide counter so parallel
/// tests never collide.
fn unique_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "espresso-workload-{tag}-{}-{n}",
        std::process::id()
    ))
}

/// Words for a length-prefixed value array: word 0 is the byte length,
/// the rest pack bytes 8-per-word little-endian (the server's layout).
fn value_words(len: usize) -> usize {
    1 + len.div_ceil(8)
}

fn pack_word(chunk: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b[..chunk.len()].copy_from_slice(chunk);
    u64::from_le_bytes(b)
}

fn unpack_value(len: usize, word_at: impl Fn(usize) -> u64) -> Vec<u8> {
    let mut value = Vec::with_capacity(len);
    for i in 0..len.div_ceil(8) {
        let word = word_at(1 + i).to_le_bytes();
        let take = (len - i * 8).min(8);
        value.extend_from_slice(&word[..take]);
    }
    value
}

/// Runs a write section; on [`PjhError::HeapFull`] collects the heap
/// (reclaiming deleted entries and replaced values) and retries — the
/// server's `with_gc_retry` idiom. The first retry uses the auto
/// collector, whose incremental cycle also refills the allocator's
/// free lists; only if that still leaves no room does a stop-the-world
/// full compaction run.
fn with_gc_retry<T>(
    handle: &HeapHandle,
    mut f: impl FnMut(&mut Pjh) -> Result<T, PjhError>,
) -> Result<T, WorkloadError> {
    match handle.with_mut(&mut f) {
        Err(PjhError::HeapFull { .. }) => {
            handle
                .with_mut(|h| h.gc(&[]).map(|_| ()))
                .map_err(pjh_err)?;
            match handle.with_mut(&mut f) {
                Err(PjhError::HeapFull { .. }) => {
                    handle
                        .with_mut(|h| h.gc_full(&[]).map(|_| ()))
                        .map_err(pjh_err)?;
                    handle.with_mut(&mut f).map_err(pjh_err)
                }
                other => other.map_err(pjh_err),
            }
        }
        other => other.map_err(pjh_err),
    }
}

// ---- raw word-level ops (shared by RawBackend and ShardedBackend) ----

/// The two reference slots of a raw entry instance.
const F_DATA: usize = 0;
const F_FIELDS: usize = 1;

/// Raw entry class name (layout-validated against the image on reopen).
const RAW_ENTRY_CLASS: &str = "WorkloadRawEntry";

fn raw_entry_fields() -> Vec<FieldDesc> {
    vec![FieldDesc::reference("data"), FieldDesc::reference("fields")]
}

/// Allocates and fills a value array with plain persisted stores. The
/// array is fresh and unreachable until linked, so a crash in between
/// leaves garbage, never a torn entry.
fn raw_alloc_value(h: &mut Pjh, kid_arr: KlassId, value: &[u8]) -> Result<Ref, PjhError> {
    let arr = h.alloc_array(kid_arr, value_words(value.len()))?;
    h.array_set(arr, 0, value.len() as u64);
    for (i, chunk) in value.chunks(8).enumerate() {
        h.array_set(arr, 1 + i, pack_word(chunk));
    }
    h.flush_object(arr);
    Ok(arr)
}

/// The key's entry, created (with a zeroed fields array) and published
/// if absent.
fn raw_entry(
    h: &mut Pjh,
    kid_entry: KlassId,
    kid_arr: KlassId,
    name: &str,
) -> Result<Ref, PjhError> {
    if let Some(e) = h.get_root(name) {
        return Ok(e);
    }
    let e = h.alloc_instance(kid_entry)?;
    // Freed regions are zeroed before reuse, so a fresh array reads 0 —
    // the field-default contract the digest depends on.
    let fields = h.alloc_array(kid_arr, NUM_FIELDS)?;
    h.set_field_ref(e, F_FIELDS, fields)?;
    h.flush_object(e);
    h.set_root(name, e)?;
    Ok(e)
}

fn raw_set(
    handle: &HeapHandle,
    kid_entry: KlassId,
    kid_arr: KlassId,
    name: &str,
    value: &[u8],
) -> Result<(), WorkloadError> {
    with_gc_retry(handle, |h| {
        let arr = raw_alloc_value(h, kid_arr, value)?;
        let e = raw_entry(h, kid_entry, kid_arr, name)?;
        h.set_field_ref(e, F_DATA, arr)?;
        h.flush_object(e);
        Ok(())
    })
}

fn raw_fset(
    handle: &HeapHandle,
    kid_entry: KlassId,
    kid_arr: KlassId,
    name: &str,
    index: u8,
    value: u64,
) -> Result<(), WorkloadError> {
    with_gc_retry(handle, |h| {
        let e = raw_entry(h, kid_entry, kid_arr, name)?;
        let fields = h.field_ref(e, F_FIELDS);
        h.array_set(fields, usize::from(index), value);
        h.flush_element(fields, usize::from(index));
        Ok(())
    })
}

fn raw_get(handle: &HeapHandle, name: &str) -> Option<Vec<u8>> {
    handle.with(|h| {
        let e = h.get_root(name)?;
        let data = h.field_ref(e, F_DATA);
        if data.is_null() {
            return None;
        }
        let len = h.array_get(data, 0) as usize;
        Some(unpack_value(len, |i| h.array_get(data, i)))
    })
}

fn raw_fget(handle: &HeapHandle, name: &str, index: u8) -> Option<u64> {
    handle.with(|h| {
        let e = h.get_root(name)?;
        let fields = h.field_ref(e, F_FIELDS);
        Some(h.array_get(fields, usize::from(index)))
    })
}

fn raw_txn(
    handle: &HeapHandle,
    kid_entry: KlassId,
    kid_arr: KlassId,
    name: &str,
    parts: &[TxnPart],
) -> Result<(), WorkloadError> {
    // Parts apply in order under one write-session lock; replay is
    // single-threaded and commit epochs only seal between trace ops, so
    // sequential application is indistinguishable from staged atomicity
    // here (`Del` then `Set` leaves a fresh entry, `Set` then `Del`
    // leaves the key gone).
    for part in parts {
        match part {
            TxnPart::Set(value) => raw_set(handle, kid_entry, kid_arr, name, value)?,
            TxnPart::FSet(index, value) => {
                raw_fset(handle, kid_entry, kid_arr, name, *index, *value)?;
            }
            TxnPart::Del => {
                handle.with_mut(|h| h.remove_root(name));
            }
        }
    }
    Ok(())
}

/// Generic range scan for the embedded adapters: probes every key index
/// through the backend's own `get` (so the valueless-entry rule falls out
/// of `get`'s contract), filters by lexicographic name bounds, sorts, and
/// truncates. O(key_space) per scan — scenarios are CI-scale by
/// construction ([`crate::scenario::MAX_KEY_SPACE`]), and the point of
/// these adapters is semantic ground truth, not scan throughput; the
/// server adapter is the one that exercises the real index path.
fn probe_scan<B: Backend + ?Sized>(
    backend: &mut B,
    key_space: u32,
    start: &str,
    end: &str,
    limit: u32,
) -> Result<Vec<(String, Vec<u8>)>, WorkloadError> {
    let mut items = Vec::new();
    for key in 0..key_space {
        let name = key_name(key);
        if name.as_str() < start || (!end.is_empty() && name.as_str() >= end) {
            continue;
        }
        if let Some(value) = backend.get(key)? {
            items.push((name, value));
        }
    }
    items.sort();
    items.truncate(limit as usize);
    Ok(items)
}

// ---- raw backend ----

/// Word-level `Pjh` adapter on one managed heap.
pub struct RawBackend {
    dir: PathBuf,
    key_space: u32,
    mgr: Option<HeapManager>,
    handle: Option<HeapHandle>,
    kid_entry: KlassId,
    kid_arr: KlassId,
}

impl RawBackend {
    /// Creates a fresh heap in a private directory.
    ///
    /// # Errors
    ///
    /// Heap creation errors.
    pub fn new(key_space: u32) -> Result<RawBackend, WorkloadError> {
        let dir = unique_dir("raw");
        let mgr = HeapManager::open(&dir).map_err(pjh_err)?;
        let handle = mgr
            .open_or_create(HEAP_NAME, HEAP_BYTES, heap_config(key_space))
            .map_err(pjh_err)?;
        let (kid_entry, kid_arr) = Self::register(&handle)?;
        Ok(RawBackend {
            dir,
            key_space,
            mgr: Some(mgr),
            handle: Some(handle),
            kid_entry,
            kid_arr,
        })
    }

    fn register(handle: &HeapHandle) -> Result<(KlassId, KlassId), WorkloadError> {
        handle
            .with_mut(|h| {
                let kid_entry = h.register_instance(RAW_ENTRY_CLASS, raw_entry_fields())?;
                let kid_arr = h.register_prim_array();
                Ok((kid_entry, kid_arr))
            })
            .map_err(pjh_err)
    }

    fn handle(&self) -> &HeapHandle {
        self.handle.as_ref().expect("backend is open")
    }
}

impl Backend for RawBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Raw
    }

    fn get(&mut self, key: u32) -> Result<Option<Vec<u8>>, WorkloadError> {
        Ok(raw_get(self.handle(), &key_name(key)))
    }

    fn set(&mut self, key: u32, value: &[u8]) -> Result<(), WorkloadError> {
        raw_set(
            self.handle(),
            self.kid_entry,
            self.kid_arr,
            &key_name(key),
            value,
        )
    }

    fn del(&mut self, key: u32) -> Result<bool, WorkloadError> {
        Ok(self.handle().with_mut(|h| h.remove_root(&key_name(key))))
    }

    fn fget(&mut self, key: u32, index: u8) -> Result<Option<u64>, WorkloadError> {
        Ok(raw_fget(self.handle(), &key_name(key), index))
    }

    fn fset(&mut self, key: u32, index: u8, value: u64) -> Result<(), WorkloadError> {
        raw_fset(
            self.handle(),
            self.kid_entry,
            self.kid_arr,
            &key_name(key),
            index,
            value,
        )
    }

    fn txn(&mut self, key: u32, parts: &[TxnPart]) -> Result<(), WorkloadError> {
        raw_txn(
            self.handle(),
            self.kid_entry,
            self.kid_arr,
            &key_name(key),
            parts,
        )
    }

    fn scan(
        &mut self,
        start: &str,
        end: &str,
        limit: u32,
    ) -> Result<Vec<(String, Vec<u8>)>, WorkloadError> {
        let key_space = self.key_space;
        probe_scan(self, key_space, start, end, limit)
    }

    fn commit(&mut self, wait: bool) -> Result<(), WorkloadError> {
        let ticket = self.handle().commit().map_err(pjh_err)?;
        if wait {
            ticket.wait().map_err(pjh_err)?;
        }
        Ok(())
    }

    fn durability(&self) -> Durability {
        Durability::EpochCommit
    }

    fn heap_stats(&self) -> Option<String> {
        Some(self.handle().heap_stats().summary_line())
    }

    fn set_flush_paused(&mut self, paused: bool) -> Result<(), WorkloadError> {
        self.handle().set_flush_paused(paused);
        Ok(())
    }

    fn crash_recover(&mut self) -> Result<(), WorkloadError> {
        let handle = self.handle.take().expect("backend is open");
        // Abort *before* resuming: once the pipeline wakes, it would
        // apply the queued epochs instead of losing them. Then resume so
        // the manager's drop drain cannot hang on a paused worker.
        handle.abort_pending_commits();
        handle.set_flush_paused(false);
        drop(handle);
        self.mgr = None; // drop order: handle, then manager
        let mgr = HeapManager::open(&self.dir).map_err(pjh_err)?;
        let handle = mgr
            .load(HEAP_NAME, LoadOptions::default())
            .map_err(pjh_err)?;
        let (kid_entry, kid_arr) = Self::register(&handle)?;
        self.kid_entry = kid_entry;
        self.kid_arr = kid_arr;
        self.handle = Some(handle);
        self.mgr = Some(mgr);
        Ok(())
    }
}

impl Drop for RawBackend {
    fn drop(&mut self) {
        if let Some(h) = &self.handle {
            h.set_flush_paused(false);
        }
        self.handle = None;
        self.mgr = None;
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

// ---- typed backend ----

/// The typed entry class — same two-array shape as the server's
/// `EspressoKvEntry`, under this crate's own name so a workload heap is
/// never mistaken for a server heap.
struct WlEntry;

impl PObject for WlEntry {
    const CLASS_NAME: &'static str = "WorkloadKvEntry";
    fn schema() -> Schema {
        Schema::builder(Self::CLASS_NAME)
            .array_field("data")
            .array_field("fields")
            .build()
    }
}

/// Typed-session adapter: the server's data path on one unsharded heap.
pub struct TypedBackend {
    dir: PathBuf,
    key_space: u32,
    mgr: Option<HeapManager>,
    handle: Option<HeapHandle>,
    data_fld: ArrFld<WlEntry>,
    fields_fld: ArrFld<WlEntry>,
}

impl TypedBackend {
    /// Creates a fresh heap in a private directory.
    ///
    /// # Errors
    ///
    /// Heap creation / schema registration errors.
    pub fn new(key_space: u32) -> Result<TypedBackend, WorkloadError> {
        let dir = unique_dir("typed");
        let mgr = HeapManager::open(&dir).map_err(pjh_err)?;
        let handle = mgr
            .open_or_create(HEAP_NAME, HEAP_BYTES, heap_config(key_space))
            .map_err(pjh_err)?;
        let (data_fld, fields_fld) = Self::register(&handle)?;
        Ok(TypedBackend {
            dir,
            key_space,
            mgr: Some(mgr),
            handle: Some(handle),
            data_fld,
            fields_fld,
        })
    }

    fn register(handle: &HeapHandle) -> Result<(ArrFld<WlEntry>, ArrFld<WlEntry>), WorkloadError> {
        let class = handle.register::<WlEntry>().map_err(pjh_err)?;
        let data = class.arr_field("data").expect("declared field");
        let fields = class.arr_field("fields").expect("declared field");
        Ok((data, fields))
    }

    fn handle(&self) -> &HeapHandle {
        self.handle.as_ref().expect("backend is open")
    }

    /// Allocates and fills a value array outside any transaction (the
    /// server's `alloc_value_arr`): fresh and unreachable, so it needs
    /// no undo logging however large the value.
    fn alloc_value(h: &mut Pjh, value: &[u8]) -> Result<PArr, PjhError> {
        let arr = h.alloc_arr(value_words(value.len()))?;
        h.array_set(arr.raw(), 0, value.len() as u64);
        for (i, chunk) in value.chunks(8).enumerate() {
            h.array_set(arr.raw(), 1 + i, pack_word(chunk));
        }
        h.flush_object(arr.raw());
        Ok(arr)
    }
}

impl Backend for TypedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Typed
    }

    fn get(&mut self, key: u32) -> Result<Option<Vec<u8>>, WorkloadError> {
        let name = key_name(key);
        let session = self.handle().read();
        let entry: Option<PRef<WlEntry>> = session.root::<WlEntry>(&name).map_err(pjh_err)?;
        let Some(entry) = entry else { return Ok(None) };
        let Some(data) = session.get_arr(entry, self.data_fld) else {
            return Ok(None);
        };
        let len = session.arr_get(data, 0) as usize;
        Ok(Some(unpack_value(len, |i| session.arr_get(data, i))))
    }

    fn set(&mut self, key: u32, value: &[u8]) -> Result<(), WorkloadError> {
        let name = key_name(key);
        let data_fld = self.data_fld;
        let fields_fld = self.fields_fld;
        with_gc_retry(self.handle.as_ref().expect("backend is open"), |h| {
            let arr = Self::alloc_value(h, value)?;
            let (entry, fresh) = h.txn(|t| {
                let (entry, fresh) = match t.root::<WlEntry>(&name)? {
                    Some(entry) => (entry, false),
                    None => {
                        let entry = t.alloc::<WlEntry>()?;
                        let fields = t.alloc_arr(NUM_FIELDS)?;
                        t.set_arr(entry, fields_fld, Some(fields))?;
                        (entry, true)
                    }
                };
                t.set_arr(entry, data_fld, Some(arr))?;
                Ok((entry, fresh))
            })?;
            if fresh {
                // Publish after the transaction commits: a crash between
                // leaves unreachable garbage, never a torn entry.
                h.set_root_typed(&name, entry)?;
            }
            Ok(())
        })
    }

    fn del(&mut self, key: u32) -> Result<bool, WorkloadError> {
        Ok(self.handle().with_mut(|h| h.remove_root(&key_name(key))))
    }

    fn fget(&mut self, key: u32, index: u8) -> Result<Option<u64>, WorkloadError> {
        let name = key_name(key);
        let session = self.handle().read();
        let entry: Option<PRef<WlEntry>> = session.root::<WlEntry>(&name).map_err(pjh_err)?;
        let Some(entry) = entry else { return Ok(None) };
        let fields = session
            .get_arr(entry, self.fields_fld)
            .expect("entries always carry a fields array");
        Ok(Some(session.arr_get(fields, usize::from(index))))
    }

    fn fset(&mut self, key: u32, index: u8, value: u64) -> Result<(), WorkloadError> {
        let name = key_name(key);
        let fields_fld = self.fields_fld;
        with_gc_retry(self.handle.as_ref().expect("backend is open"), |h| {
            let (entry, fresh) = h.txn(|t| {
                let (entry, fresh) = match t.root::<WlEntry>(&name)? {
                    Some(entry) => (entry, false),
                    None => {
                        let entry = t.alloc::<WlEntry>()?;
                        let fields = t.alloc_arr(NUM_FIELDS)?;
                        t.set_arr(entry, fields_fld, Some(fields))?;
                        (entry, true)
                    }
                };
                let fields = t
                    .get_arr(entry, fields_fld)
                    .expect("entries always carry a fields array");
                t.arr_set(fields, usize::from(index), value);
                Ok((entry, fresh))
            })?;
            if fresh {
                h.set_root_typed(&name, entry)?;
            }
            Ok(())
        })
    }

    fn txn(&mut self, key: u32, parts: &[TxnPart]) -> Result<(), WorkloadError> {
        let name = key_name(key);
        let data_fld = self.data_fld;
        let fields_fld = self.fields_fld;
        with_gc_retry(self.handle.as_ref().expect("backend is open"), |h| {
            // Value arrays are filled unlogged before the transaction;
            // the transaction links them — its undo-log cost is a few
            // words per part regardless of value sizes.
            let mut value_arrs: Vec<PArr> = Vec::new();
            for part in parts {
                if let TxnPart::Set(value) = part {
                    value_arrs.push(Self::alloc_value(h, value)?);
                }
            }
            // The staged view of the single key this transaction owns:
            // `None` = untouched (root stands), `Some(None)` = staged
            // delete, `Some(Some(e))` = publish `e` after commit.
            let mut staged: Option<Option<PRef<WlEntry>>> = None;
            h.txn(|t| {
                staged = None;
                let mut next_arr = value_arrs.iter();
                for part in parts {
                    if let TxnPart::Del = part {
                        staged = Some(None);
                        continue;
                    }
                    let current = match staged {
                        Some(view) => view,
                        None => t.root::<WlEntry>(&name)?,
                    };
                    let entry = match current {
                        Some(entry) => entry,
                        None => {
                            let entry = t.alloc::<WlEntry>()?;
                            let fields = t.alloc_arr(NUM_FIELDS)?;
                            t.set_arr(entry, fields_fld, Some(fields))?;
                            staged = Some(Some(entry));
                            entry
                        }
                    };
                    match part {
                        TxnPart::Set(_) => {
                            let arr = *next_arr.next().expect("one array per Set part");
                            t.set_arr(entry, data_fld, Some(arr))?;
                        }
                        TxnPart::FSet(index, value) => {
                            let fields = t
                                .get_arr(entry, fields_fld)
                                .expect("entries always carry a fields array");
                            t.arr_set(fields, usize::from(*index), *value);
                        }
                        TxnPart::Del => unreachable!("handled above"),
                    }
                }
                Ok(())
            })?;
            // Root changes after the commit, still under this write
            // session, so no epoch can seal between them.
            match staged {
                Some(Some(entry)) => h.set_root_typed(&name, entry)?,
                Some(None) => {
                    h.remove_root(&name);
                }
                None => {}
            }
            Ok(())
        })
    }

    fn scan(
        &mut self,
        start: &str,
        end: &str,
        limit: u32,
    ) -> Result<Vec<(String, Vec<u8>)>, WorkloadError> {
        let key_space = self.key_space;
        probe_scan(self, key_space, start, end, limit)
    }

    fn commit(&mut self, wait: bool) -> Result<(), WorkloadError> {
        let ticket = self.handle().commit().map_err(pjh_err)?;
        if wait {
            ticket.wait().map_err(pjh_err)?;
        }
        Ok(())
    }

    fn durability(&self) -> Durability {
        Durability::EpochCommit
    }

    fn heap_stats(&self) -> Option<String> {
        Some(self.handle().heap_stats().summary_line())
    }

    fn set_flush_paused(&mut self, paused: bool) -> Result<(), WorkloadError> {
        self.handle().set_flush_paused(paused);
        Ok(())
    }

    fn crash_recover(&mut self) -> Result<(), WorkloadError> {
        let handle = self.handle.take().expect("backend is open");
        // Abort before resuming — see `RawBackend::crash_recover`.
        handle.abort_pending_commits();
        handle.set_flush_paused(false);
        drop(handle);
        self.mgr = None;
        let mgr = HeapManager::open(&self.dir).map_err(pjh_err)?;
        let handle = mgr
            .load(HEAP_NAME, LoadOptions::default())
            .map_err(pjh_err)?;
        let (data_fld, fields_fld) = Self::register(&handle)?;
        self.data_fld = data_fld;
        self.fields_fld = fields_fld;
        self.handle = Some(handle);
        self.mgr = Some(mgr);
        Ok(())
    }
}

impl Drop for TypedBackend {
    fn drop(&mut self) {
        if let Some(h) = &self.handle {
            h.set_flush_paused(false);
        }
        self.handle = None;
        self.mgr = None;
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

// ---- sharded backend ----

/// Raw ops routed across a [`ShardedHeap`]; commits fan out to every
/// shard and durability is the all-shards barrier.
pub struct ShardedBackend {
    dir: PathBuf,
    key_space: u32,
    mgr: Option<HeapManager>,
    heap: Option<ShardedHeap>,
    klass: Option<ShardedKlass>,
    arr_kids: Vec<KlassId>,
}

impl ShardedBackend {
    /// Creates a fresh sharded heap in a private directory.
    ///
    /// # Errors
    ///
    /// Heap creation errors.
    pub fn new(key_space: u32) -> Result<ShardedBackend, WorkloadError> {
        let dir = unique_dir("sharded");
        let mgr = HeapManager::open(&dir).map_err(pjh_err)?;
        let heap =
            ShardedHeap::create(&mgr, HEAP_NAME, SHARDS, SHARD_BYTES, heap_config(key_space))
                .map_err(pjh_err)?;
        let (klass, arr_kids) = Self::register(&heap)?;
        Ok(ShardedBackend {
            dir,
            key_space,
            mgr: Some(mgr),
            heap: Some(heap),
            klass: Some(klass),
            arr_kids,
        })
    }

    fn register(heap: &ShardedHeap) -> Result<(ShardedKlass, Vec<KlassId>), WorkloadError> {
        let klass = heap
            .register_instance(RAW_ENTRY_CLASS, raw_entry_fields())
            .map_err(pjh_err)?;
        let arr_kids = (0..heap.num_shards())
            .map(|i| heap.handle(i).with_mut(|h| h.register_prim_array()))
            .collect();
        Ok((klass, arr_kids))
    }

    fn heap(&self) -> &ShardedHeap {
        self.heap.as_ref().expect("backend is open")
    }

    /// The shard-local raw vocabulary for `name`'s home shard.
    fn route(&self, name: &str) -> (&HeapHandle, KlassId, KlassId) {
        let heap = self.heap.as_ref().expect("backend is open");
        let shard = heap.shard_of(name);
        (
            heap.handle(shard),
            self.klass.as_ref().expect("backend is open").id(shard),
            self.arr_kids[shard],
        )
    }
}

impl Backend for ShardedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sharded
    }

    fn get(&mut self, key: u32) -> Result<Option<Vec<u8>>, WorkloadError> {
        let name = key_name(key);
        let (handle, _, _) = self.route(&name);
        Ok(raw_get(handle, &name))
    }

    fn set(&mut self, key: u32, value: &[u8]) -> Result<(), WorkloadError> {
        let name = key_name(key);
        let (handle, kid_entry, kid_arr) = self.route(&name);
        raw_set(handle, kid_entry, kid_arr, &name, value)
    }

    fn del(&mut self, key: u32) -> Result<bool, WorkloadError> {
        Ok(self.heap().remove_root(&key_name(key)))
    }

    fn fget(&mut self, key: u32, index: u8) -> Result<Option<u64>, WorkloadError> {
        let name = key_name(key);
        let (handle, _, _) = self.route(&name);
        Ok(raw_fget(handle, &name, index))
    }

    fn fset(&mut self, key: u32, index: u8, value: u64) -> Result<(), WorkloadError> {
        let name = key_name(key);
        let (handle, kid_entry, kid_arr) = self.route(&name);
        raw_fset(handle, kid_entry, kid_arr, &name, index, value)
    }

    fn txn(&mut self, key: u32, parts: &[TxnPart]) -> Result<(), WorkloadError> {
        let name = key_name(key);
        let (handle, kid_entry, kid_arr) = self.route(&name);
        raw_txn(handle, kid_entry, kid_arr, &name, parts)
    }

    fn scan(
        &mut self,
        start: &str,
        end: &str,
        limit: u32,
    ) -> Result<Vec<(String, Vec<u8>)>, WorkloadError> {
        let key_space = self.key_space;
        probe_scan(self, key_space, start, end, limit)
    }

    fn commit(&mut self, wait: bool) -> Result<(), WorkloadError> {
        let ticket = self.heap().commit().map_err(pjh_err)?;
        if wait {
            ticket.wait().map_err(pjh_err)?;
        }
        Ok(())
    }

    fn durability(&self) -> Durability {
        Durability::EpochCommit
    }

    fn heap_stats(&self) -> Option<String> {
        Some(self.heap().heap_stats().summary_line())
    }

    fn set_flush_paused(&mut self, paused: bool) -> Result<(), WorkloadError> {
        self.heap().set_flush_paused(paused);
        Ok(())
    }

    fn crash_recover(&mut self) -> Result<(), WorkloadError> {
        let heap = self.heap.take().expect("backend is open");
        self.klass = None;
        // Abort before resuming — see `RawBackend::crash_recover`.
        for i in 0..heap.num_shards() {
            heap.handle(i).abort_pending_commits();
        }
        heap.set_flush_paused(false);
        drop(heap);
        self.mgr = None;
        let mgr = HeapManager::open(&self.dir).map_err(pjh_err)?;
        let heap = ShardedHeap::open(&mgr, HEAP_NAME, LoadOptions::default()).map_err(pjh_err)?;
        let (klass, arr_kids) = Self::register(&heap)?;
        self.klass = Some(klass);
        self.arr_kids = arr_kids;
        self.heap = Some(heap);
        self.mgr = Some(mgr);
        Ok(())
    }
}

impl Drop for ShardedBackend {
    fn drop(&mut self) {
        if let Some(heap) = &self.heap {
            heap.set_flush_paused(false);
        }
        self.heap = None;
        self.mgr = None;
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

// ---- minidb backend ----

/// Bytes for the in-memory NVM device minidb runs on.
const MINIDB_BYTES: usize = 48 << 20;
const TABLE: &str = "kv";
/// Column indices in the `kv` table.
const COL_VALUE: usize = 1;
const COL_F0: usize = 2;

fn db_err(e: espresso_minidb::DbError) -> WorkloadError {
    WorkloadError::Backend(format!("minidb: {e}"))
}

/// One `kv` table in the WAL-durable engine: `k TEXT` primary key,
/// `v TEXT` (NULL = valueless entry), `f0..f7 INT` field slots. Every
/// statement is durable before it returns, so `Commit` ops are no-ops
/// and a crash preserves every executed op.
pub struct MinidbBackend {
    dev: NvmDevice,
    key_space: u32,
    db: Option<Database>,
    conn: Option<espresso_minidb::Connection>,
}

impl MinidbBackend {
    /// Creates a fresh database on an in-memory device.
    ///
    /// # Errors
    ///
    /// Engine creation errors.
    pub fn new(key_space: u32) -> Result<MinidbBackend, WorkloadError> {
        let dev = NvmDevice::new(NvmConfig::with_size(MINIDB_BYTES));
        let db = Database::create(dev.clone()).map_err(db_err)?;
        let mut conn = db.connect();
        let mut columns = vec![
            ("k".to_string(), ColType::Text),
            ("v".to_string(), ColType::Text),
        ];
        for i in 0..NUM_FIELDS {
            columns.push((format!("f{i}"), ColType::Int));
        }
        conn.create_table_direct(TABLE, columns, 0)
            .map_err(db_err)?;
        Ok(MinidbBackend {
            dev,
            key_space,
            db: Some(db),
            conn: Some(conn),
        })
    }

    fn conn(&mut self) -> &mut espresso_minidb::Connection {
        self.conn.as_mut().expect("backend is open")
    }

    fn key_value(key: u32) -> Value {
        Value::Str(key_name(key))
    }

    /// A fresh row: key, optional value, zeroed fields.
    fn fresh_row(key: u32, value: Option<&[u8]>) -> Result<Vec<Value>, WorkloadError> {
        let mut row = vec![Self::key_value(key), Self::value_cell(value)?];
        row.extend(std::iter::repeat_with(|| Value::Int(0)).take(NUM_FIELDS));
        Ok(row)
    }

    fn value_cell(value: Option<&[u8]>) -> Result<Value, WorkloadError> {
        match value {
            None => Ok(Value::Null),
            Some(bytes) => String::from_utf8(bytes.to_vec())
                .map(Value::Str)
                .map_err(|_| {
                    WorkloadError::Backend(
                        "minidb: values must be UTF-8 (trace generation emits [a-z0-9], \
                     so only hand-built traces can hit this)"
                            .into(),
                    )
                }),
        }
    }

    fn apply_part(&mut self, key: u32, part: &TxnPart) -> Result<(), WorkloadError> {
        match part {
            TxnPart::Set(value) => self.set(key, value),
            TxnPart::Del => self.del(key).map(|_| ()),
            TxnPart::FSet(index, value) => self.fset(key, *index, *value),
        }
    }
}

impl Backend for MinidbBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Minidb
    }

    fn get(&mut self, key: u32) -> Result<Option<Vec<u8>>, WorkloadError> {
        let row = self
            .conn()
            .find_row(TABLE, &Self::key_value(key))
            .map_err(db_err)?;
        Ok(match row {
            None => None,
            Some(row) => match &row[COL_VALUE] {
                Value::Str(s) => Some(s.clone().into_bytes()),
                _ => None,
            },
        })
    }

    fn set(&mut self, key: u32, value: &[u8]) -> Result<(), WorkloadError> {
        let cell = Self::value_cell(Some(value))?;
        let k = Self::key_value(key);
        let updated = self
            .conn()
            .update_fields(TABLE, &k, &[(COL_VALUE, cell)])
            .map_err(db_err)?;
        if updated == 0 {
            let row = Self::fresh_row(key, Some(value))?;
            self.conn().persist_row(TABLE, row).map_err(db_err)?;
        }
        Ok(())
    }

    fn del(&mut self, key: u32) -> Result<bool, WorkloadError> {
        let affected = self
            .conn()
            .delete_row(TABLE, &Self::key_value(key))
            .map_err(db_err)?;
        Ok(affected > 0)
    }

    fn fget(&mut self, key: u32, index: u8) -> Result<Option<u64>, WorkloadError> {
        let row = self
            .conn()
            .find_row(TABLE, &Self::key_value(key))
            .map_err(db_err)?;
        Ok(row.map(|row| match row[COL_F0 + usize::from(index)] {
            // Fields are u64 on the heap backends; the INT column stores
            // the same bits as i64, so the cast is lossless both ways.
            Value::Int(v) => v as u64,
            _ => 0,
        }))
    }

    fn fset(&mut self, key: u32, index: u8, value: u64) -> Result<(), WorkloadError> {
        let k = Self::key_value(key);
        let cell = (COL_F0 + usize::from(index), Value::Int(value as i64));
        let updated = self
            .conn()
            .update_fields(TABLE, &k, &[cell])
            .map_err(db_err)?;
        if updated == 0 {
            let mut row = Self::fresh_row(key, None)?;
            row[COL_F0 + usize::from(index)] = Value::Int(value as i64);
            self.conn().persist_row(TABLE, row).map_err(db_err)?;
        }
        Ok(())
    }

    fn txn(&mut self, key: u32, parts: &[TxnPart]) -> Result<(), WorkloadError> {
        self.conn().begin();
        for part in parts {
            if let Err(e) = self.apply_part(key, part) {
                self.conn().rollback();
                return Err(e);
            }
        }
        self.conn().commit().map_err(db_err)
    }

    fn scan(
        &mut self,
        start: &str,
        end: &str,
        limit: u32,
    ) -> Result<Vec<(String, Vec<u8>)>, WorkloadError> {
        let key_space = self.key_space;
        probe_scan(self, key_space, start, end, limit)
    }

    fn commit(&mut self, _wait: bool) -> Result<(), WorkloadError> {
        // Every statement already group-flushed its WAL record.
        Ok(())
    }

    fn durability(&self) -> Durability {
        Durability::PerOp
    }

    fn set_flush_paused(&mut self, _paused: bool) -> Result<(), WorkloadError> {
        // No background pipeline to pause: the WAL flush is synchronous,
        // so a pause window narrows nothing. Accepted (not an error) so
        // fault scenarios can still run here for crash parity.
        Ok(())
    }

    fn crash_recover(&mut self) -> Result<(), WorkloadError> {
        self.conn = None;
        self.db = None;
        self.dev.crash();
        self.dev.recover();
        let db = Database::open(self.dev.clone()).map_err(db_err)?;
        self.conn = Some(db.connect());
        self.db = Some(db);
        Ok(())
    }
}

// ---- server backend ----

fn proto_err(e: espresso_server::protocol::ProtocolError) -> WorkloadError {
    WorkloadError::Backend(format!("server: {e}"))
}

/// A live `espresso-server` on loopback TCP driven through the blocking
/// [`Client`]. Writes are acknowledged on durability (group commit), so
/// `Commit` ops are no-ops; faults are unsupported — the heap lives
/// behind the socket, and pausing its pipeline would only turn
/// acknowledged writes into `BUSY` refusals.
pub struct ServerBackend {
    handle: Option<ServerHandle>,
    client: Client,
}

impl ServerBackend {
    /// Starts an in-process server on a fresh port and connects.
    ///
    /// # Errors
    ///
    /// Server start / connect errors.
    pub fn new(key_space: u32) -> Result<ServerBackend, WorkloadError> {
        let handle = Server::start(ServerConfig {
            shards: SHARDS,
            shard_bytes: SHARD_BYTES,
            name_table_capacity: table_capacity(key_space),
            // Replay is one synchronous connection: no concurrency to
            // shed, so make admission effectively unbounded and give the
            // commit wait generous room under simulated NVM latency.
            max_pending: 1 << 20,
            commit_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        })
        .map_err(|e| WorkloadError::Backend(format!("server start: {e}")))?;
        let client = Client::connect(handle.addr()).map_err(WorkloadError::Io)?;
        Ok(ServerBackend {
            handle: Some(handle),
            client,
        })
    }
}

impl Backend for ServerBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Server
    }

    fn get(&mut self, key: u32) -> Result<Option<Vec<u8>>, WorkloadError> {
        self.client.get(&key_name(key)).map_err(proto_err)
    }

    fn set(&mut self, key: u32, value: &[u8]) -> Result<(), WorkloadError> {
        self.client.set(&key_name(key), value).map_err(proto_err)
    }

    fn del(&mut self, key: u32) -> Result<bool, WorkloadError> {
        self.client.del(&key_name(key)).map_err(proto_err)
    }

    fn fget(&mut self, key: u32, index: u8) -> Result<Option<u64>, WorkloadError> {
        self.client.fget(&key_name(key), index).map_err(proto_err)
    }

    fn fset(&mut self, key: u32, index: u8, value: u64) -> Result<(), WorkloadError> {
        self.client
            .fset(&key_name(key), index, value)
            .map_err(proto_err)
    }

    fn txn(&mut self, key: u32, parts: &[TxnPart]) -> Result<(), WorkloadError> {
        let name = key_name(key);
        let ops = parts
            .iter()
            .map(|part| match part {
                TxnPart::Set(value) => TxnOp::Set {
                    key: name.clone(),
                    value: value.clone(),
                },
                TxnPart::Del => TxnOp::Del { key: name.clone() },
                TxnPart::FSet(index, value) => TxnOp::FSet {
                    key: name.clone(),
                    index: *index,
                    value: *value,
                },
            })
            .collect();
        self.client.txn(ops).map_err(proto_err)
    }

    /// The one adapter whose scan rides the real access path: each
    /// shard's persistent secondary index answers a `SCAN` page stream
    /// (resuming past truncation with last-key + `"\0"`), and the pages
    /// merge client-side exactly as `docs/PROTOCOL.md` prescribes.
    fn scan(
        &mut self,
        start: &str,
        end: &str,
        limit: u32,
    ) -> Result<Vec<(String, Vec<u8>)>, WorkloadError> {
        let mut all: Vec<(String, Vec<u8>)> = Vec::new();
        for shard in 0..SHARDS as u16 {
            let mut cursor = start.to_string();
            let mut collected = 0u32;
            loop {
                let page = self
                    .client
                    .scan(shard, &cursor, end, limit)
                    .map_err(proto_err)?;
                collected += page.items.len() as u32;
                let last = page.items.last().map(|(k, _)| k.clone());
                all.extend(page.items);
                // Pages are ascending, so once this shard has yielded
                // `limit` entries, none of its later ones can displace an
                // already-collected entry from the merged cutoff.
                if !page.truncated || collected >= limit {
                    break;
                }
                match last {
                    // Resume just past the last key: append the smallest
                    // suffix that sorts strictly after it.
                    Some(mut k) => {
                        k.push('\0');
                        cursor = k;
                    }
                    None => break,
                }
            }
        }
        all.sort();
        all.truncate(limit as usize);
        Ok(all)
    }

    fn commit(&mut self, _wait: bool) -> Result<(), WorkloadError> {
        // Every write was already acknowledged durable by group commit.
        Ok(())
    }

    fn durability(&self) -> Durability {
        Durability::EpochCommit
    }

    fn supports_faults(&self) -> bool {
        false
    }

    fn set_flush_paused(&mut self, _paused: bool) -> Result<(), WorkloadError> {
        Err(WorkloadError::Unsupported(
            "the server backend cannot inject faults (its heap lives behind the socket)".into(),
        ))
    }

    fn crash_recover(&mut self) -> Result<(), WorkloadError> {
        Err(WorkloadError::Unsupported(
            "the server backend cannot inject faults (its heap lives behind the socket)".into(),
        ))
    }
}

impl Drop for ServerBackend {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            handle.stop_and_wait();
        }
    }
}

/// Builds a fresh, empty backend of the requested kind, sized for
/// `key_space` keys.
///
/// # Errors
///
/// Construction errors from the underlying layer.
pub fn make_backend(kind: BackendKind, key_space: u32) -> Result<Box<dyn Backend>, WorkloadError> {
    Ok(match kind {
        BackendKind::Raw => Box::new(RawBackend::new(key_space)?),
        BackendKind::Typed => Box::new(TypedBackend::new(key_space)?),
        BackendKind::Sharded => Box::new(ShardedBackend::new(key_space)?),
        BackendKind::Minidb => Box::new(MinidbBackend::new(key_space)?),
        BackendKind::Server => Box::new(ServerBackend::new(key_space)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::state_digest;

    /// The entry-model contract, exercised against every embedded
    /// backend (the server adapter is covered by the matrix tests).
    fn contract(kind: BackendKind) {
        let mut b = make_backend(kind, 8).unwrap();
        assert_eq!(b.get(0).unwrap(), None);
        assert_eq!(b.fget(0, 0).unwrap(), None);
        b.set(0, b"hello").unwrap();
        assert_eq!(b.get(0).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(b.fget(0, 3).unwrap(), Some(0), "fields default to zero");
        b.fset(0, 3, 99).unwrap();
        assert_eq!(b.fget(0, 3).unwrap(), Some(99));
        b.set(0, b"rewritten0").unwrap();
        assert_eq!(b.get(0).unwrap().as_deref(), Some(&b"rewritten0"[..]));
        assert_eq!(b.fget(0, 3).unwrap(), Some(99), "set keeps fields");
        // fset on an absent key makes a valueless entry.
        b.fset(1, 0, 7).unwrap();
        assert_eq!(b.get(1).unwrap(), None);
        assert_eq!(b.fget(1, 0).unwrap(), Some(7));
        assert!(b.del(0).unwrap());
        assert!(!b.del(0).unwrap());
        assert_eq!(b.get(0).unwrap(), None);
        assert_eq!(b.fget(0, 3).unwrap(), None, "del removes fields too");
        // Del-then-Set inside a txn leaves a fresh entry.
        b.fset(2, 1, 5).unwrap();
        b.txn(2, &[TxnPart::Del, TxnPart::Set(b"fresh".to_vec())])
            .unwrap();
        assert_eq!(b.get(2).unwrap().as_deref(), Some(&b"fresh"[..]));
        assert_eq!(b.fget(2, 1).unwrap(), Some(0), "old fields gone");
        // Set-then-Del leaves the key gone.
        b.txn(3, &[TxnPart::Set(b"doomed".to_vec()), TxnPart::Del])
            .unwrap();
        assert_eq!(b.fget(3, 0).unwrap(), None);
        b.commit(true).unwrap();
        scan_contract(b.as_mut());
    }

    /// Scan semantics on top of the state `contract` leaves behind:
    /// wk2 = "fresh" is the only *valued* entry (wk1 is a valueless
    /// fset-only entry and must be skipped). Then adds wk4..wk7 and
    /// checks ordering, bounds, limits, and inverted ranges.
    fn scan_contract(b: &mut dyn Backend) {
        assert_eq!(
            b.scan("", "", 100).unwrap(),
            vec![("wk2".to_string(), b"fresh".to_vec())],
            "full scan sees the valued entry and skips the valueless one"
        );
        for key in 4..8 {
            b.set(key, format!("v{key}").as_bytes()).unwrap();
        }
        b.commit(true).unwrap();
        let all = b.scan("", "", 100).unwrap();
        let names: Vec<&str> = all.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["wk2", "wk4", "wk5", "wk6", "wk7"]);
        // Half-open window: start inclusive, end exclusive.
        let window = b.scan("wk4", "wk6", 100).unwrap();
        let names: Vec<&str> = window.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["wk4", "wk5"]);
        assert_eq!(window[0].1, b"v4");
        // Limit truncates from the front of the order.
        let limited = b.scan("", "", 2).unwrap();
        let names: Vec<&str> = limited.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["wk2", "wk4"]);
        // An inverted range is empty, not an error.
        assert!(b.scan("wk6", "wk4", 100).unwrap().is_empty());
    }

    #[test]
    fn raw_contract() {
        contract(BackendKind::Raw);
    }

    #[test]
    fn typed_contract() {
        contract(BackendKind::Typed);
    }

    #[test]
    fn sharded_contract() {
        contract(BackendKind::Sharded);
    }

    #[test]
    fn minidb_contract() {
        contract(BackendKind::Minidb);
    }

    /// The server adapter's scan is the only one that exercises the real
    /// per-shard index path plus client-side merge, so it gets its own
    /// run of the same scan contract (the rest of the entry-model
    /// contract is covered for the server by the matrix tests).
    #[test]
    fn server_scan_merges_shard_pages() {
        let mut b = ServerBackend::new(64).unwrap();
        for key in 0..48 {
            b.set(key, format!("sv{key}").as_bytes()).unwrap();
        }
        // Keys hash across all 4 shards; the merged scan must interleave
        // them back into one lexicographic order.
        let all = b.scan("", "", 4096).unwrap();
        assert_eq!(all.len(), 48);
        let mut expected: Vec<(String, Vec<u8>)> = (0..48)
            .map(|k| (key_name(k), format!("sv{k}").into_bytes()))
            .collect();
        expected.sort();
        assert_eq!(all, expected);
        // A small limit forces per-shard page resumption and a merged
        // cutoff identical to the probe-scan rule.
        let limited = b.scan("wk2", "wk40", 5).unwrap();
        let want: Vec<(String, Vec<u8>)> = expected
            .iter()
            .filter(|(k, _)| k.as_str() >= "wk2" && k.as_str() < "wk40")
            .take(5)
            .cloned()
            .collect();
        assert_eq!(limited, want);
        // Valueless entries are skipped by the index scan too.
        b.fset(60, 1, 9).unwrap();
        assert!(!b
            .scan("", "", 4096)
            .unwrap()
            .iter()
            .any(|(k, _)| k == "wk60"));
    }

    #[test]
    fn digests_agree_on_identical_state() {
        let mut digests = Vec::new();
        for kind in [BackendKind::Raw, BackendKind::Typed, BackendKind::Minidb] {
            let mut b = make_backend(kind, 4).unwrap();
            b.set(0, b"same").unwrap();
            b.fset(1, 2, 11).unwrap();
            b.commit(true).unwrap();
            digests.push(state_digest(b.as_mut(), 4).unwrap());
        }
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[1], digests[2]);
    }

    #[test]
    fn crash_loses_uncommitted_state_on_raw() {
        let mut b = RawBackend::new(4).unwrap();
        b.set(0, b"durable").unwrap();
        b.commit(true).unwrap();
        b.set(1, b"volatile").unwrap();
        b.crash_recover().unwrap();
        assert_eq!(b.get(0).unwrap().as_deref(), Some(&b"durable"[..]));
        assert_eq!(b.get(1).unwrap(), None, "uncommitted set lost");
        // The backend stays usable after recovery.
        b.set(1, b"again").unwrap();
        b.commit(true).unwrap();
        assert_eq!(b.get(1).unwrap().as_deref(), Some(&b"again"[..]));
    }

    #[test]
    fn paused_pipeline_commits_are_lost_on_crash() {
        let mut b = TypedBackend::new(4).unwrap();
        b.set(0, b"kept").unwrap();
        b.commit(true).unwrap();
        b.set_flush_paused(true).unwrap();
        b.set(1, b"sealed-not-applied").unwrap();
        b.commit(false).unwrap();
        b.crash_recover().unwrap();
        assert_eq!(b.get(0).unwrap().as_deref(), Some(&b"kept"[..]));
        assert_eq!(b.get(1).unwrap(), None, "paused-epoch commit discarded");
    }

    #[test]
    fn minidb_crash_preserves_every_op() {
        let mut b = MinidbBackend::new(4).unwrap();
        b.set(0, b"walled").unwrap();
        b.fset(1, 0, 3).unwrap();
        b.crash_recover().unwrap();
        assert_eq!(b.get(0).unwrap().as_deref(), Some(&b"walled"[..]));
        assert_eq!(b.fget(1, 0).unwrap(), Some(3));
    }
}
