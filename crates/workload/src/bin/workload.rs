//! The `workload` CLI: record scenario traces and replay them across
//! backends.
//!
//! ```text
//! workload record  --scenario workloads/mixed_small.json [--out FILE] [--print]
//! workload replay  --backend KIND (--trace FILE | --scenario FILE) [--faults] [--perf]
//! workload compare (--trace FILE | --scenario FILE) --backends a,b,...
//! workload matrix  (--trace FILE | --scenario FILE) [--backends a,b,...] [--perf]
//! ```
//!
//! `record` writes the canonical binary trace for a scenario (default
//! `<name>.trace` next to the config). `replay` runs one backend and
//! prints its digest; `--faults` applies the scenario's fault schedule
//! (crash + flush-pause) and checks the recovered *state* against the
//! durable-prefix oracle. `compare` and `matrix` run the same trace
//! against several fresh backends — `matrix` prints a throughput/digest
//! table — and exit non-zero when any digest diverges. `--perf` adds
//! per-op latency percentiles (p50/p99) and scan counts to the output.

use std::path::PathBuf;
use std::process::ExitCode;

use espresso_workload::replay::{expected_recovery_digest, replay, run_matrix, ReplayReport};
use espresso_workload::trace::record;
use espresso_workload::{make_backend, BackendKind, Scenario, Trace, WorkloadError};

struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, WorkloadError> {
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(WorkloadError::Invalid(format!(
                    "unexpected positional argument {arg:?}"
                )));
            };
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => Some(it.next().unwrap().clone()),
                _ => None,
            };
            flags.push((name.to_string(), value));
        }
        Ok(Args { flags })
    }

    fn take(&mut self, name: &str) -> Option<Option<String>> {
        let i = self.flags.iter().position(|(n, _)| n == name)?;
        Some(self.flags.remove(i).1)
    }

    fn value(&mut self, name: &str) -> Result<Option<String>, WorkloadError> {
        match self.take(name) {
            None => Ok(None),
            Some(Some(v)) => Ok(Some(v)),
            Some(None) => Err(WorkloadError::Invalid(format!("--{name} needs a value"))),
        }
    }

    fn flag(&mut self, name: &str) -> Result<bool, WorkloadError> {
        match self.take(name) {
            None => Ok(false),
            Some(None) => Ok(true),
            Some(Some(v)) => Err(WorkloadError::Invalid(format!(
                "--{name} takes no value (got {v:?})"
            ))),
        }
    }

    fn finish(self) -> Result<(), WorkloadError> {
        match self.flags.first() {
            None => Ok(()),
            Some((name, _)) => Err(WorkloadError::Invalid(format!("unknown flag --{name}"))),
        }
    }
}

/// The trace to run: an explicit `--trace` file, or `--scenario`
/// recorded on the fly. Returns the scenario too when one was loaded
/// (for fault schedules and default names).
fn resolve_trace(args: &mut Args) -> Result<(Trace, Option<Scenario>), WorkloadError> {
    let trace_path = args.value("trace")?;
    let scenario_path = args.value("scenario")?;
    match (trace_path, scenario_path) {
        (Some(t), None) => Ok((Trace::load(t)?, None)),
        (None, Some(s)) => {
            let scenario = Scenario::load(s)?;
            Ok((record(&scenario), Some(scenario)))
        }
        (Some(t), Some(s)) => {
            // Both given: the file is authoritative, the scenario rides
            // along for its fault schedule — but they must agree.
            let scenario = Scenario::load(s)?;
            let trace = Trace::load(t)?;
            let recorded = record(&scenario);
            if recorded != trace {
                return Err(WorkloadError::Invalid(
                    "--trace does not match --scenario (re-record it?)".into(),
                ));
            }
            Ok((trace, Some(scenario)))
        }
        (None, None) => Err(WorkloadError::Invalid(
            "need --trace FILE or --scenario FILE".into(),
        )),
    }
}

fn parse_backends(spec: Option<String>) -> Result<Vec<BackendKind>, WorkloadError> {
    match spec {
        None => Ok(BackendKind::ALL.to_vec()),
        Some(spec) => spec
            .split(',')
            .map(|s| BackendKind::parse(s.trim()))
            .collect(),
    }
}

fn cmd_record(mut args: Args) -> Result<ExitCode, WorkloadError> {
    let path = args
        .value("scenario")?
        .ok_or_else(|| WorkloadError::Invalid("record needs --scenario FILE".into()))?;
    let out = args.value("out")?;
    let print = args.flag("print")?;
    args.finish()?;
    let scenario = Scenario::load(&path)?;
    let trace = record(&scenario);
    let out = out
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(&path).with_file_name(format!("{}.trace", scenario.name)));
    trace.save(&out)?;
    println!(
        "recorded {} ops ({} bytes) for scenario {:?} -> {}",
        trace.ops.len(),
        trace.encode().len(),
        scenario.name,
        out.display()
    );
    if print {
        for (i, op) in trace.ops.iter().enumerate() {
            println!("{i:6}  {op:?}");
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_replay(mut args: Args) -> Result<ExitCode, WorkloadError> {
    let kind = BackendKind::parse(
        &args
            .value("backend")?
            .ok_or_else(|| WorkloadError::Invalid("replay needs --backend KIND".into()))?,
    )?;
    let with_faults = args.flag("faults")?;
    let perf = args.flag("perf")?;
    let (trace, scenario) = resolve_trace(&mut args)?;
    args.finish()?;
    let faults = if with_faults {
        Some(scenario.as_ref().and_then(|s| s.faults).ok_or_else(|| {
            WorkloadError::Invalid("--faults needs --scenario with a \"faults\" section".into())
        })?)
    } else {
        None
    };
    let mut backend = make_backend(kind, trace.key_space)?;
    let report = replay(backend.as_mut(), &trace, faults.as_ref())?;
    print_report(&report, trace.ops.len());
    if perf {
        print_perf(&report);
    }
    if let Some(stats) = backend.heap_stats() {
        println!("heap: {stats}");
    }
    if let Some(f) = &faults {
        // The recovered *state* is what the oracle predicts; scans the
        // crashed run observed past the durable prefix are legitimate
        // but not reproducible from the prefix, so the combined digest
        // is not comparable here.
        let expected = expected_recovery_digest(kind, &trace, f)?;
        if report.state_digest != expected {
            eprintln!(
                "RECOVERY DIVERGED: post-crash state {:016x}, durable-prefix oracle {:016x}",
                report.state_digest, expected
            );
            return Ok(ExitCode::FAILURE);
        }
        println!("recovery matches the durable-prefix oracle ({expected:016x})");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_matrix(mut args: Args, compare_only: bool) -> Result<ExitCode, WorkloadError> {
    let kinds = parse_backends(args.value("backends")?)?;
    if kinds.is_empty() {
        return Err(WorkloadError::Invalid("--backends list is empty".into()));
    }
    let perf = args.flag("perf")?;
    let (trace, scenario) = resolve_trace(&mut args)?;
    args.finish()?;
    let label = scenario
        .as_ref()
        .map(|s| s.name.clone())
        .unwrap_or_else(|| "trace".into());
    println!(
        "{label}: {} ops over {} keys, backends: {}",
        trace.ops.len(),
        trace.key_space,
        kinds
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let reports = run_matrix(&trace, &kinds)?;
    if !compare_only {
        if perf {
            println!(
                "{:<10} {:>12} {:>12} {:>9} {:>9} {:>7}  digest",
                "backend", "ops/s", "ms", "p50_us", "p99_us", "scans"
            );
            for r in &reports {
                println!(
                    "{:<10} {:>12.0} {:>12.1} {:>9} {:>9} {:>7}  {:016x}",
                    r.kind.name(),
                    r.ops_per_sec(),
                    r.elapsed.as_secs_f64() * 1e3,
                    r.p50_us,
                    r.p99_us,
                    r.scans,
                    r.digest
                );
            }
        } else {
            println!("{:<10} {:>12} {:>12}  digest", "backend", "ops/s", "ms");
            for r in &reports {
                println!(
                    "{:<10} {:>12.0} {:>12.1}  {:016x}",
                    r.kind.name(),
                    r.ops_per_sec(),
                    r.elapsed.as_secs_f64() * 1e3,
                    r.digest
                );
            }
        }
    }
    let first = reports[0].digest;
    if reports.iter().all(|r| r.digest == first) {
        println!(
            "CONVERGED: all {} backends reached digest {first:016x}",
            reports.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for r in &reports {
            eprintln!("  {:<10} {:016x}", r.kind.name(), r.digest);
        }
        eprintln!("DIVERGED: backends did not converge");
        Ok(ExitCode::FAILURE)
    }
}

fn print_report(r: &ReplayReport, total_ops: usize) {
    println!(
        "{}: executed {}/{} ops in {:.1} ms ({:.0} ops/s){}, digest {:016x}",
        r.kind.name(),
        r.executed,
        total_ops,
        r.elapsed.as_secs_f64() * 1e3,
        r.ops_per_sec(),
        if r.crashed { ", crashed+recovered" } else { "" },
        r.digest
    );
}

fn print_perf(r: &ReplayReport) {
    println!(
        "perf: p50 {} us, p99 {} us per op, {} scans",
        r.p50_us, r.p99_us, r.scans
    );
}

const USAGE: &str = "\
workload — scenario harness for the espresso backends

USAGE:
  workload record  --scenario FILE [--out FILE] [--print]
  workload replay  --backend raw|typed|sharded|minidb|server
                   (--trace FILE | --scenario FILE) [--faults] [--perf]
  workload compare (--trace FILE | --scenario FILE) [--backends a,b,...]
  workload matrix  (--trace FILE | --scenario FILE) [--backends a,b,...] [--perf]

--perf adds per-op latency percentiles (p50/p99) and scan counts.
Scenario configs live under workloads/ — see docs/WORKLOADS.md.";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let run = || -> Result<ExitCode, WorkloadError> {
        let args = Args::parse(rest)?;
        match cmd.as_str() {
            "record" => cmd_record(args),
            "replay" => cmd_replay(args),
            "compare" => cmd_matrix(args, true),
            "matrix" => cmd_matrix(args, false),
            other => Err(WorkloadError::Invalid(format!(
                "unknown command {other:?}\n{USAGE}"
            ))),
        }
    };
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("workload: {e}");
            ExitCode::FAILURE
        }
    }
}
