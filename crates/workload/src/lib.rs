//! espresso-workload: the config-driven scenario harness.
//!
//! The repo grew five distinct persistence layers — raw [`Pjh`] words,
//! typed object sessions, [`ShardedHeap`], the minidb relational engine,
//! and the espresso-server TCP front end — and, before this crate, each
//! was exercised by its own ad-hoc bin, so results were never
//! apples-to-apples and a new scenario meant new Rust code. This crate
//! turns scenarios into data, the way the paper's evaluation fixes a
//! workload matrix and runs every contender through it:
//!
//! 1. **Scenario model** ([`scenario`]) — a JSON file under
//!    `workloads/` declares key-space, value sizes, op mix, skew, op
//!    count, seed, and an optional fault schedule; parsing validates
//!    everything into a [`Scenario`].
//! 2. **Trace engine** ([`trace`]) — [`record`] expands
//!    a scenario into a versioned binary op trace from a seeded RNG
//!    (no wall-clock anywhere), so the same config always yields
//!    byte-identical traces.
//! 3. **Backends** ([`backend`], [`backends`]) — one [`Backend`] trait
//!    with five adapters; [`replay`](replay::replay) drives any of them
//!    with a trace, and [`state_digest`] proves
//!    two backends (or two runs, or a crash-recovery) converged to the
//!    same observable state.
//!
//! The `workload` CLI (`record | replay | compare | matrix`) fronts all
//! of it; `docs/WORKLOADS.md` is the schema and format reference, and a
//! contributor adds a scenario by writing a JSON file, not a bin.
//!
//! ```no_run
//! use espresso_workload::{BackendKind, replay::run_matrix, Scenario, trace::record};
//!
//! let scenario = Scenario::load("workloads/mixed_small.json").unwrap();
//! let trace = record(&scenario);
//! let reports = run_matrix(&trace, &BackendKind::ALL).unwrap();
//! assert!(reports.windows(2).all(|w| w[0].digest == w[1].digest));
//! ```
//!
//! [`Pjh`]: espresso_core::Pjh
//! [`ShardedHeap`]: espresso_core::ShardedHeap

pub mod backend;
pub mod backends;
pub mod replay;
pub mod scenario;
pub mod trace;

pub use backend::{state_digest, Backend, BackendKind, Durability, ScanDigest};
pub use backends::make_backend;
pub use replay::{durable_prefix, expected_recovery_digest, run_matrix, ReplayReport};
pub use scenario::{FaultSchedule, OpMix, Scenario, Skew};
pub use trace::{key_name, record, scan_bound, Op, Trace, TxnPart};

/// Field slots per entry — the server's `protocol::NUM_FIELDS`,
/// mirrored so this crate's trace format stands alone (a unit test
/// pins the two together).
pub const NUM_FIELDS: usize = 8;

/// Longest value a trace op may carry — the server's
/// `protocol::MAX_VALUE`, mirrored likewise.
pub const MAX_VALUE_LEN: usize = 1 << 20;

/// Largest `limit` a trace scan op may carry — the server's
/// `protocol::MAX_SCAN` page cap, mirrored likewise.
pub const MAX_SCAN_LIMIT: u32 = 4096;

/// Everything the harness can fail with.
#[derive(Debug)]
pub enum WorkloadError {
    /// Malformed JSON in a scenario file.
    Parse(String),
    /// A well-formed config that violates the schema (unknown keys,
    /// out-of-range values, a mix that does not sum to 100), or bad CLI
    /// arguments.
    Invalid(String),
    /// A trace file that fails validation (bad magic, truncation,
    /// out-of-range ops, trailing bytes).
    Trace(String),
    /// Filesystem / socket I/O.
    Io(std::io::Error),
    /// An error surfaced by the backend under test.
    Backend(String),
    /// The requested operation is not supported by this backend (e.g.
    /// fault injection against the TCP server).
    Unsupported(String),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Parse(e) => write!(f, "scenario parse error: {e}"),
            WorkloadError::Invalid(e) => write!(f, "invalid: {e}"),
            WorkloadError::Trace(e) => write!(f, "trace error: {e}"),
            WorkloadError::Io(e) => write!(f, "io error: {e}"),
            WorkloadError::Backend(e) => write!(f, "backend error: {e}"),
            WorkloadError::Unsupported(e) => write!(f, "unsupported: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    /// The entry model mirrors the server's wire constants; if the
    /// protocol ever widens, the trace format needs a version bump, and
    /// this test is the tripwire.
    #[test]
    fn constants_match_the_server_protocol() {
        assert_eq!(crate::NUM_FIELDS, espresso_server::protocol::NUM_FIELDS);
        assert_eq!(crate::MAX_VALUE_LEN, espresso_server::protocol::MAX_VALUE);
        assert_eq!(
            crate::MAX_SCAN_LIMIT as usize,
            espresso_server::protocol::MAX_SCAN
        );
    }
}
