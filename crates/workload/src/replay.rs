//! Deterministic replay: drive a [`Backend`] with a [`Trace`], inject
//! the fault schedule, and report the resulting [`state_digest`].
//!
//! Replay is synchronous and single-connection, so op `i` always
//! executes after op `i-1` completed — fault indices are exact, and two
//! replays of one trace on fresh backends walk identical states.
//!
//! # Crash expectations
//!
//! A crash-schedule replay is only meaningful against a prediction.
//! [`durable_prefix`] computes, from the backend's durability model and
//! the fault schedule, how many leading trace ops survive the crash;
//! [`expected_recovery_digest`] replays exactly that prefix fault-free
//! on a second fresh backend of the same kind. `crash_matrix` asserts
//! the two digests agree — the harness's recovery oracle.

use std::time::{Duration, Instant};

use crate::backend::{state_digest, Backend, BackendKind, Durability, ScanDigest};
use crate::backends::make_backend;
use crate::scenario::FaultSchedule;
use crate::trace::{scan_bound, Op, Trace};
use crate::WorkloadError;

/// What one replay did and where it converged.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Which backend ran.
    pub kind: BackendKind,
    /// Trace ops executed (short of the trace length only when a crash
    /// schedule stopped the run).
    pub executed: usize,
    /// Wall time spent executing ops (excludes backend construction and
    /// the digest read-back).
    pub elapsed: Duration,
    /// The convergence digest the matrix compares: the final state
    /// combined with every scan result set observed along the way.
    /// Equals [`state_digest`](Self::state_digest) when no scans ran, so
    /// scan-free traces keep their historical digests.
    pub digest: u64,
    /// The post-replay (post-recovery, if crashed) state digest alone.
    /// Crash oracles compare this one: a crashed run legitimately
    /// observed scans past the durable prefix, so only the recovered
    /// *state* is predictable.
    pub state_digest: u64,
    /// Scan ops executed.
    pub scans: u64,
    /// Whether a crash was injected.
    pub crashed: bool,
    /// Median per-op latency in microseconds (0 when nothing executed).
    pub p50_us: u64,
    /// 99th-percentile per-op latency in microseconds.
    pub p99_us: u64,
}

impl ReplayReport {
    /// Executed ops per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.executed as f64 / self.elapsed.as_secs_f64()
    }
}

/// The `q`-th percentile (0..=1) of an unsorted latency sample, matching
/// the load generator's convention (ceil rank, clamped).
fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

fn check_faults(trace: &Trace, faults: &FaultSchedule) -> Result<(), WorkloadError> {
    let n = trace.ops.len() as u64;
    if faults.crash_after_op >= n {
        return Err(WorkloadError::Invalid(format!(
            "crash_after_op {} is past the trace ({n} ops) — fault indices count final \
             trace positions, including interleaved Commit ops",
            faults.crash_after_op
        )));
    }
    Ok(())
}

/// Replays `trace` against `backend`, optionally injecting `faults`,
/// and digests the resulting state.
///
/// With a fault schedule: the flush pipeline pauses right before the op
/// at `flush_pause_from_op` executes, `Commit` ops inside the pause
/// window seal without waiting (their epochs queue, then die with the
/// crash), and after the op at `crash_after_op` the backend crashes and
/// recovers; the digest then reads the *recovered* state.
///
/// # Errors
///
/// Fault indices out of range, faults on a backend that does not
/// support them, and backend op errors.
pub fn replay(
    backend: &mut dyn Backend,
    trace: &Trace,
    faults: Option<&FaultSchedule>,
) -> Result<ReplayReport, WorkloadError> {
    if let Some(f) = faults {
        check_faults(trace, f)?;
        if !backend.supports_faults() {
            return Err(WorkloadError::Unsupported(format!(
                "backend {} does not support fault injection",
                backend.kind()
            )));
        }
    }
    let mut paused = false;
    let mut crashed = false;
    let mut executed = 0usize;
    let mut scan_digest = ScanDigest::new();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(trace.ops.len());
    let start = Instant::now();
    for (i, op) in trace.ops.iter().enumerate() {
        let i = i as u64;
        if let Some(f) = faults {
            if !paused && f.flush_pause_from_op == Some(i) {
                backend.set_flush_paused(true)?;
                paused = true;
            }
        }
        let op_start = Instant::now();
        match op {
            Op::Get(k) => {
                backend.get(*k)?;
            }
            Op::Set(k, v) => backend.set(*k, v)?,
            Op::Del(k) => {
                backend.del(*k)?;
            }
            Op::FGet(k, f) => {
                backend.fget(*k, *f)?;
            }
            Op::FSet(k, f, v) => backend.fset(*k, *f, *v)?,
            Op::Txn(k, parts) => backend.txn(*k, parts)?,
            // Inside the pause window a durability wait would deadlock
            // against the paused pipeline: seal-and-queue instead, which
            // is exactly the lagging-flush shape the fault models.
            Op::Commit => backend.commit(!paused)?,
            Op::Scan(s, e, limit) => {
                let lo = scan_bound(*s, trace.key_space);
                let hi = scan_bound(*e, trace.key_space);
                let items = backend.scan(&lo, &hi, *limit)?;
                scan_digest.fold(&lo, &hi, *limit, &items);
            }
        }
        latencies_us.push(op_start.elapsed().as_micros() as u64);
        executed += 1;
        if let Some(f) = faults {
            if f.crash_after_op == i {
                backend.crash_recover()?;
                crashed = true;
                // The crash also un-paused the pipeline (recovery starts
                // a fresh one); stop executing — post-crash ops are not
                // part of the scenario's story.
                break;
            }
        }
    }
    let elapsed = start.elapsed();
    let state = state_digest(backend, trace.key_space)?;
    latencies_us.sort_unstable();
    Ok(ReplayReport {
        kind: backend.kind(),
        executed,
        elapsed,
        digest: scan_digest.combined(state),
        state_digest: state,
        scans: scan_digest.scans(),
        crashed,
        p50_us: percentile_us(&latencies_us, 0.50),
        p99_us: percentile_us(&latencies_us, 0.99),
    })
}

/// How many leading trace ops survive the crash in `faults`, given a
/// backend's durability model.
///
/// * [`Durability::PerOp`]: everything executed survives —
///   `crash_after_op + 1` ops.
/// * [`Durability::EpochCommit`]: state rolls back to the last `Commit`
///   that was *awaited* — the last commit at an index before the pause
///   window opened (commits inside the window seal but never flush, and
///   the crash discards their queued epochs). No such commit → empty
///   heap.
pub fn durable_prefix(trace: &Trace, faults: &FaultSchedule, durability: Durability) -> usize {
    match durability {
        Durability::PerOp => faults.crash_after_op as usize + 1,
        Durability::EpochCommit => {
            let pause = faults.flush_pause_from_op.unwrap_or(u64::MAX);
            trace.ops[..=faults.crash_after_op as usize]
                .iter()
                .enumerate()
                .rev()
                .find(|(i, op)| **op == Op::Commit && (*i as u64) < pause)
                .map(|(i, _)| i + 1)
                .unwrap_or(0)
        }
    }
}

/// The *state* digest a crashed replay must recover to: replays the
/// durable prefix fault-free on a second fresh backend of the same kind.
/// Compare against [`ReplayReport::state_digest`] — the crashed run may
/// have observed scans beyond the durable prefix, so its combined
/// `digest` is not predictable from the prefix alone.
///
/// # Errors
///
/// Backend construction / replay errors.
pub fn expected_recovery_digest(
    kind: BackendKind,
    trace: &Trace,
    faults: &FaultSchedule,
) -> Result<u64, WorkloadError> {
    check_faults(trace, faults)?;
    let mut oracle = make_backend(kind, trace.key_space)?;
    let prefix = durable_prefix(trace, faults, oracle.durability());
    let truncated = Trace {
        key_space: trace.key_space,
        seed: trace.seed,
        ops: trace.ops[..prefix].to_vec(),
    };
    Ok(replay(oracle.as_mut(), &truncated, None)?.state_digest)
}

/// Runs one trace against each backend kind on a fresh instance and
/// collects the reports (in `kinds` order). Divergence is the caller's
/// judgment — the CLI and CI fail when the digests differ.
///
/// # Errors
///
/// The first backend construction or replay error.
pub fn run_matrix(
    trace: &Trace,
    kinds: &[BackendKind],
) -> Result<Vec<ReplayReport>, WorkloadError> {
    let mut reports = Vec::with_capacity(kinds.len());
    for kind in kinds {
        let mut backend = make_backend(*kind, trace.key_space)?;
        reports.push(replay(backend.as_mut(), trace, None)?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{OpMix, Scenario, Skew};
    use crate::trace::record;

    fn scenario() -> Scenario {
        Scenario {
            name: "replay_test".into(),
            key_space: 12,
            ops: 120,
            seed: 99,
            value_len: (4, 16),
            mix: OpMix::default(),
            skew: Skew::Uniform,
            commit_every: 40,
            faults: None,
        }
    }

    #[test]
    fn same_trace_same_digest_on_fresh_backends() {
        let trace = record(&scenario());
        let mut a = make_backend(BackendKind::Raw, trace.key_space).unwrap();
        let mut b = make_backend(BackendKind::Raw, trace.key_space).unwrap();
        let ra = replay(a.as_mut(), &trace, None).unwrap();
        let rb = replay(b.as_mut(), &trace, None).unwrap();
        assert_eq!(ra.digest, rb.digest);
        assert_eq!(ra.executed, trace.ops.len());
        assert!(!ra.crashed);
    }

    #[test]
    fn crash_replay_matches_the_recovery_oracle() {
        let trace = record(&scenario());
        // Crash mid-trace with the pipeline paused shortly before.
        let faults = FaultSchedule {
            crash_after_op: 100,
            flush_pause_from_op: Some(60),
        };
        for kind in [BackendKind::Typed, BackendKind::Minidb] {
            let mut b = make_backend(kind, trace.key_space).unwrap();
            let report = replay(b.as_mut(), &trace, Some(&faults)).unwrap();
            assert!(report.crashed);
            assert_eq!(report.executed, 101);
            let expected = expected_recovery_digest(kind, &trace, &faults).unwrap();
            assert_eq!(report.state_digest, expected, "{kind} recovery diverged");
        }
    }

    #[test]
    fn durable_prefix_models() {
        let trace = record(&scenario()); // Commit at indices 40, 81, 122, final
        let commit_idx: Vec<usize> = trace
            .ops
            .iter()
            .enumerate()
            .filter(|(_, op)| **op == Op::Commit)
            .map(|(i, _)| i)
            .collect();
        let crash = FaultSchedule {
            crash_after_op: commit_idx[1] as u64 + 5,
            flush_pause_from_op: None,
        };
        assert_eq!(
            durable_prefix(&trace, &crash, Durability::EpochCommit),
            commit_idx[1] + 1
        );
        assert_eq!(
            durable_prefix(&trace, &crash, Durability::PerOp),
            commit_idx[1] + 6
        );
        // A pause window before the first commit voids every commit.
        let all_paused = FaultSchedule {
            crash_after_op: commit_idx[1] as u64 + 5,
            flush_pause_from_op: Some(0),
        };
        assert_eq!(
            durable_prefix(&trace, &all_paused, Durability::EpochCommit),
            0
        );
    }

    #[test]
    fn fault_indices_are_validated() {
        let trace = record(&scenario());
        let faults = FaultSchedule {
            crash_after_op: trace.ops.len() as u64,
            flush_pause_from_op: None,
        };
        let mut b = make_backend(BackendKind::Raw, trace.key_space).unwrap();
        assert!(replay(b.as_mut(), &trace, Some(&faults)).is_err());
    }
}
