//! The scenario model: a JSON config file parsed and validated into a
//! [`Scenario`], the unit a contributor writes to add a workload.
//!
//! A scenario declares *what* load looks like — key-space size, value
//! sizes, the op mix, skew, op count, seed — plus an optional fault
//! schedule; [`crate::trace::record`] expands it into a deterministic op
//! trace. The JSON reader is self-contained (the workspace is offline;
//! no serde), strict about unknown keys, and every limit is validated
//! here so the trace engine and backends can trust the numbers.
//!
//! # Config schema
//!
//! ```json
//! {
//!   "name": "mixed_small",
//!   "key_space": 128,
//!   "ops": 1500,
//!   "seed": 7,
//!   "value_len": { "min": 8, "max": 48 },
//!   "mix": { "get": 35, "set": 30, "del": 5, "fget": 10, "fset": 10, "txn": 5, "scan": 5 },
//!   "skew": { "kind": "zipfian", "theta": 0.99 },
//!   "commit_every": 250,
//!   "faults": { "crash_after_op": 900, "flush_pause_from_op": 700 }
//! }
//! ```
//!
//! `value_len`, `mix`, `skew`, `commit_every`, `seed`, and `faults` are
//! optional and default as in [`Scenario`]'s field docs. Percentages in
//! `mix` must sum to 100. See `docs/WORKLOADS.md` for the full schema
//! reference.

use std::path::Path;

use crate::{WorkloadError, MAX_VALUE_LEN};

/// Hard ceiling on `key_space`: every key becomes a named root (and a
/// digest probe), so the harness keeps scenarios at "CI can replay this"
/// scale.
pub const MAX_KEY_SPACE: u32 = 1 << 20;

/// Relative op weights, in percent; must sum to 100.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Point reads of a key's value.
    pub get: u32,
    /// Value writes.
    pub set: u32,
    /// Key deletions.
    pub del: u32,
    /// Typed-field reads.
    pub fget: u32,
    /// Typed-field writes.
    pub fset: u32,
    /// Single-key multi-part transactions (2–4 set/fset/del parts applied
    /// atomically).
    pub txn: u32,
    /// Key-range scans (bounded and full-range, with a result limit).
    /// Default 0, so pre-scan scenarios keep their exact op streams.
    pub scan: u32,
}

impl Default for OpMix {
    fn default() -> OpMix {
        OpMix {
            get: 50,
            set: 30,
            del: 5,
            fget: 5,
            fset: 5,
            txn: 5,
            scan: 0,
        }
    }
}

/// Key-popularity skew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Skew {
    /// Every key equally likely.
    Uniform,
    /// Zipfian hot keys with the given exponent (`theta = 0` degenerates
    /// to uniform).
    Zipfian {
        /// The zipf exponent.
        theta: f64,
    },
}

/// When to inject faults during replay, in **trace op indices** (the
/// recorded trace interleaves `Commit` ops per `commit_every`, so indices
/// refer to positions in the final trace — `workload record --print`
/// shows them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Crash after executing the op at this index: the backend discards
    /// everything that is not durable and recovers from its image, and
    /// replay stops there.
    pub crash_after_op: u64,
    /// Pause the flush pipeline starting at this index (inclusive):
    /// commits sealed inside the window queue without becoming durable,
    /// so the crash also discards them — the "crash mid-burst with a
    /// lagging flush pipeline" shape.
    pub flush_pause_from_op: Option<u64>,
}

/// A validated workload declaration. See the module docs for the JSON
/// shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (reports and trace filenames).
    pub name: String,
    /// Number of distinct keys (`wk0..wkN-1`).
    pub key_space: u32,
    /// Number of generated data ops (interleaved `Commit` ops come on
    /// top).
    pub ops: u64,
    /// RNG seed; two records of the same scenario are byte-identical.
    /// Default `0xE5_9E55`.
    pub seed: u64,
    /// Inclusive value-length range for `set` values. Default `8..=64`.
    pub value_len: (u32, u32),
    /// Op weights. Default: 50/30/5/5/5/5.
    pub mix: OpMix,
    /// Key skew. Default: uniform.
    pub skew: Skew,
    /// Insert a `Commit` op every N data ops (`0` = only the final
    /// commit). Default 0.
    pub commit_every: u64,
    /// Optional fault schedule for crash-recovery scenarios.
    pub faults: Option<FaultSchedule>,
}

impl Scenario {
    /// Parses and validates a scenario from JSON text.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Parse`] on malformed JSON;
    /// [`WorkloadError::Invalid`] on schema violations (unknown keys,
    /// out-of-range values, a mix that does not sum to 100).
    pub fn from_json(text: &str) -> Result<Scenario, WorkloadError> {
        let json = parse_json(text).map_err(WorkloadError::Parse)?;
        Scenario::from_value(&json)
    }

    /// Reads and parses a scenario file.
    ///
    /// # Errors
    ///
    /// I/O errors plus everything [`from_json`](Self::from_json) rejects.
    pub fn load(path: impl AsRef<Path>) -> Result<Scenario, WorkloadError> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(WorkloadError::Io)?;
        Scenario::from_json(&text)
    }

    fn from_value(json: &Json) -> Result<Scenario, WorkloadError> {
        let obj = json.as_obj("scenario")?;
        for (key, _) in obj {
            match key.as_str() {
                "name" | "key_space" | "ops" | "seed" | "value_len" | "mix" | "skew"
                | "commit_every" | "faults" => {}
                other => {
                    return Err(WorkloadError::Invalid(format!(
                        "unknown scenario key {other:?}"
                    )))
                }
            }
        }
        let name = get(obj, "name")
            .ok_or_else(|| WorkloadError::Invalid("scenario needs a \"name\"".into()))?
            .as_str("name")?
            .to_string();
        if name.is_empty() || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
            return Err(WorkloadError::Invalid(format!(
                "name {name:?} must be non-empty [A-Za-z0-9_]"
            )));
        }
        let key_space = get(obj, "key_space")
            .ok_or_else(|| WorkloadError::Invalid("scenario needs \"key_space\"".into()))?
            .as_u64("key_space")? as u32;
        if key_space == 0 || key_space > MAX_KEY_SPACE {
            return Err(WorkloadError::Invalid(format!(
                "key_space {key_space} out of range 1..={MAX_KEY_SPACE}"
            )));
        }
        let ops = get(obj, "ops")
            .ok_or_else(|| WorkloadError::Invalid("scenario needs \"ops\"".into()))?
            .as_u64("ops")?;
        if ops == 0 {
            return Err(WorkloadError::Invalid("ops must be at least 1".into()));
        }
        let seed = match get(obj, "seed") {
            Some(v) => v.as_u64("seed")?,
            None => 0xE5_9E55,
        };
        let value_len = match get(obj, "value_len") {
            Some(v) => {
                let o = v.as_obj("value_len")?;
                for (key, _) in o {
                    if key != "min" && key != "max" {
                        return Err(WorkloadError::Invalid(format!(
                            "unknown value_len key {key:?}"
                        )));
                    }
                }
                let min = get(o, "min")
                    .ok_or_else(|| WorkloadError::Invalid("value_len needs \"min\"".into()))?
                    .as_u64("value_len.min")? as u32;
                let max = get(o, "max")
                    .ok_or_else(|| WorkloadError::Invalid("value_len needs \"max\"".into()))?
                    .as_u64("value_len.max")? as u32;
                (min, max)
            }
            None => (8, 64),
        };
        if value_len.0 == 0 || value_len.0 > value_len.1 || value_len.1 as usize > MAX_VALUE_LEN {
            return Err(WorkloadError::Invalid(format!(
                "value_len {}..={} out of range (min >= 1, max <= {MAX_VALUE_LEN})",
                value_len.0, value_len.1
            )));
        }
        let mix = match get(obj, "mix") {
            Some(v) => {
                let o = v.as_obj("mix")?;
                let mut mix = OpMix {
                    get: 0,
                    set: 0,
                    del: 0,
                    fget: 0,
                    fset: 0,
                    txn: 0,
                    scan: 0,
                };
                for (key, value) in o {
                    let pct = value.as_u64(key)? as u32;
                    match key.as_str() {
                        "get" => mix.get = pct,
                        "set" => mix.set = pct,
                        "del" => mix.del = pct,
                        "fget" => mix.fget = pct,
                        "fset" => mix.fset = pct,
                        "txn" => mix.txn = pct,
                        "scan" => mix.scan = pct,
                        other => {
                            return Err(WorkloadError::Invalid(format!(
                                "unknown mix key {other:?}"
                            )))
                        }
                    }
                }
                mix
            }
            None => OpMix::default(),
        };
        let total = mix.get + mix.set + mix.del + mix.fget + mix.fset + mix.txn + mix.scan;
        if total != 100 {
            return Err(WorkloadError::Invalid(format!(
                "mix percentages sum to {total}, need exactly 100"
            )));
        }
        let skew = match get(obj, "skew") {
            Some(v) => {
                let o = v.as_obj("skew")?;
                for (key, _) in o {
                    if key != "kind" && key != "theta" {
                        return Err(WorkloadError::Invalid(format!("unknown skew key {key:?}")));
                    }
                }
                let kind = get(o, "kind")
                    .ok_or_else(|| WorkloadError::Invalid("skew needs \"kind\"".into()))?
                    .as_str("skew.kind")?;
                match kind {
                    "uniform" => Skew::Uniform,
                    "zipfian" => {
                        let theta = get(o, "theta")
                            .ok_or_else(|| {
                                WorkloadError::Invalid("zipfian skew needs \"theta\"".into())
                            })?
                            .as_f64("skew.theta")?;
                        if !(0.0..=5.0).contains(&theta) {
                            return Err(WorkloadError::Invalid(format!(
                                "skew.theta {theta} out of range 0..=5"
                            )));
                        }
                        Skew::Zipfian { theta }
                    }
                    other => {
                        return Err(WorkloadError::Invalid(format!(
                            "skew.kind {other:?} is neither \"uniform\" nor \"zipfian\""
                        )))
                    }
                }
            }
            None => Skew::Uniform,
        };
        let commit_every = match get(obj, "commit_every") {
            Some(v) => v.as_u64("commit_every")?,
            None => 0,
        };
        let faults = match get(obj, "faults") {
            Some(v) => {
                let o = v.as_obj("faults")?;
                for (key, _) in o {
                    if key != "crash_after_op" && key != "flush_pause_from_op" {
                        return Err(WorkloadError::Invalid(format!(
                            "unknown faults key {key:?}"
                        )));
                    }
                }
                let crash_after_op = get(o, "crash_after_op")
                    .ok_or_else(|| {
                        WorkloadError::Invalid("faults needs \"crash_after_op\"".into())
                    })?
                    .as_u64("faults.crash_after_op")?;
                let flush_pause_from_op = match get(o, "flush_pause_from_op") {
                    Some(v) => Some(v.as_u64("faults.flush_pause_from_op")?),
                    None => None,
                };
                if let Some(pause) = flush_pause_from_op {
                    if pause > crash_after_op {
                        return Err(WorkloadError::Invalid(format!(
                            "flush_pause_from_op {pause} is after crash_after_op \
                             {crash_after_op}: the window would never be entered"
                        )));
                    }
                }
                Some(FaultSchedule {
                    crash_after_op,
                    flush_pause_from_op,
                })
            }
            None => None,
        };
        Ok(Scenario {
            name,
            key_space,
            ops,
            seed,
            value_len,
            mix,
            skew,
            commit_every,
            faults,
        })
    }
}

fn get<'j>(obj: &'j [(String, Json)], key: &str) -> Option<&'j Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---- minimal strict JSON ----

/// A parsed JSON value. Numbers keep their source text so u64 seeds
/// survive without an f64 round-trip.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    fn as_obj(&self, what: &str) -> Result<&[(String, Json)], WorkloadError> {
        match self {
            Json::Obj(o) => Ok(o),
            other => Err(WorkloadError::Invalid(format!(
                "{what} must be an object, got {}",
                other.type_name()
            ))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, WorkloadError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(WorkloadError::Invalid(format!(
                "{what} must be a string, got {}",
                other.type_name()
            ))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, WorkloadError> {
        match self {
            Json::Num(n) => n.parse().map_err(|_| {
                WorkloadError::Invalid(format!("{what} must be a non-negative integer, got {n}"))
            }),
            other => Err(WorkloadError::Invalid(format!(
                "{what} must be a number, got {}",
                other.type_name()
            ))),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, WorkloadError> {
        match self {
            Json::Num(n) => n
                .parse()
                .map_err(|_| WorkloadError::Invalid(format!("{what} must be a number, got {n}"))),
            other => Err(WorkloadError::Invalid(format!(
                "{what} must be a number, got {}",
                other.type_name()
            ))),
        }
    }
}

struct Parser<'t> {
    bytes: &'t [u8],
    at: usize,
}

impl<'t> Parser<'t> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.at)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char, self.at, got as char
            ));
        }
        self.at += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other as char, self.at
            )),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(text.as_bytes()) {
            self.at += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.bytes.get(self.at) == Some(&b'-') {
            self.at += 1;
        }
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii digits");
        // Validate now so `as_u64`/`as_f64` only see well-formed numbers.
        text.parse::<f64>()
            .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
        Ok(Json::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .bytes
                .get(self.at)
                .copied()
                .ok_or("unterminated string")?
            {
                b'"' => {
                    self.at += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.at += 1;
                    let esc = self
                        .bytes
                        .get(self.at)
                        .copied()
                        .ok_or("unterminated escape")?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => {
                            return Err(format!(
                                "unsupported escape \\{} at byte {}",
                                other as char, self.at
                            ))
                        }
                    });
                    self.at += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.at += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.at += 1,
                b']' => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {:?}", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        if self.peek()? == b'}' {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.at += 1,
                b'}' => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {:?}", other as char)),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing bytes at {}", p.at));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"{
        "name": "mixed_small",
        "key_space": 128,
        "ops": 1500,
        "seed": 7,
        "value_len": {"min": 8, "max": 48},
        "mix": {"get": 40, "set": 30, "del": 5, "fget": 10, "fset": 10, "txn": 5},
        "skew": {"kind": "zipfian", "theta": 0.99},
        "commit_every": 250,
        "faults": {"crash_after_op": 900, "flush_pause_from_op": 700}
    }"#;

    #[test]
    fn parses_a_full_scenario() {
        let s = Scenario::from_json(FULL).unwrap();
        assert_eq!(s.name, "mixed_small");
        assert_eq!(s.key_space, 128);
        assert_eq!(s.ops, 1500);
        assert_eq!(s.seed, 7);
        assert_eq!(s.value_len, (8, 48));
        assert_eq!(s.mix.get, 40);
        assert_eq!(s.skew, Skew::Zipfian { theta: 0.99 });
        assert_eq!(s.commit_every, 250);
        assert_eq!(
            s.faults,
            Some(FaultSchedule {
                crash_after_op: 900,
                flush_pause_from_op: Some(700)
            })
        );
    }

    #[test]
    fn defaults_fill_optional_sections() {
        let s = Scenario::from_json(r#"{"name": "tiny", "key_space": 4, "ops": 10}"#).unwrap();
        assert_eq!(s.seed, 0xE5_9E55);
        assert_eq!(s.value_len, (8, 64));
        assert_eq!(s.mix, OpMix::default());
        assert_eq!(s.skew, Skew::Uniform);
        assert_eq!(s.commit_every, 0);
        assert!(s.faults.is_none());
    }

    #[test]
    fn large_seeds_survive_exactly() {
        let s = Scenario::from_json(
            r#"{"name": "s", "key_space": 1, "ops": 1, "seed": 18446744073709551615}"#,
        )
        .unwrap();
        assert_eq!(s.seed, u64::MAX);
    }

    #[test]
    fn rejects_unknown_keys_and_bad_mixes() {
        assert!(
            Scenario::from_json(r#"{"name": "s", "key_space": 1, "ops": 1, "zzz": 1}"#).is_err()
        );
        assert!(Scenario::from_json(
            r#"{"name": "s", "key_space": 1, "ops": 1, "mix": {"get": 50, "set": 49}}"#
        )
        .is_err());
        assert!(Scenario::from_json(
            r#"{"name": "s", "key_space": 1, "ops": 1, "mix": {"range": 100}}"#
        )
        .is_err());
    }

    #[test]
    fn parses_a_scan_mix() {
        let s = Scenario::from_json(
            r#"{"name": "s", "key_space": 8, "ops": 10,
                "mix": {"get": 30, "set": 40, "scan": 30}}"#,
        )
        .unwrap();
        assert_eq!(s.mix.scan, 30);
        assert_eq!(s.mix.get + s.mix.set + s.mix.scan, 100);
        // Scan defaults to 0 when the mix omits it.
        let s = Scenario::from_json(
            r#"{"name": "s", "key_space": 8, "ops": 10, "mix": {"get": 50, "set": 50}}"#,
        )
        .unwrap();
        assert_eq!(s.mix.scan, 0);
    }

    #[test]
    fn rejects_malformed_json_and_limits() {
        assert!(Scenario::from_json("{").is_err());
        assert!(Scenario::from_json(r#"{"name": "s", "key_space": 0, "ops": 1}"#).is_err());
        assert!(Scenario::from_json(r#"{"name": "s", "key_space": 1, "ops": 0}"#).is_err());
        assert!(Scenario::from_json(
            r#"{"name": "s", "key_space": 1, "ops": 1, "value_len": {"min": 9, "max": 8}}"#
        )
        .is_err());
        // A pause window opening after the crash point can never be entered.
        assert!(Scenario::from_json(
            r#"{"name": "s", "key_space": 1, "ops": 1,
                "faults": {"crash_after_op": 5, "flush_pause_from_op": 9}}"#
        )
        .is_err());
        // Duplicate keys are config bugs, not last-wins surprises.
        assert!(
            Scenario::from_json(r#"{"name": "s", "name": "t", "key_space": 1, "ops": 1}"#).is_err()
        );
    }
}
