//! The trace engine: [`record`] expands a [`Scenario`] into a
//! deterministic, versioned binary op [`Trace`]; [`Trace::encode`] /
//! [`Trace::decode`] round-trip it through a file.
//!
//! Determinism is the whole point — the generator uses a seeded
//! xorshift64* stream and no wall-clock, so the same scenario always
//! yields byte-identical traces, and a trace file is a self-contained
//! artifact that replays identically on any backend (see
//! [`crate::replay`]).
//!
//! # Trace format v2
//!
//! All integers big-endian. Header: 8-byte magic `b"ESPWTR02"` (the
//! trailing two bytes are the format version), then `key_space: u32`,
//! `seed: u64`, `op_count: u64`. Then `op_count` ops, each a 1-byte tag:
//!
//! | tag | op | payload |
//! |-----|----|---------|
//! | `0x01` | `Get` | `key: u32` |
//! | `0x02` | `Set` | `key: u32`, `len: u32`, `len` value bytes |
//! | `0x03` | `Del` | `key: u32` |
//! | `0x04` | `FGet` | `key: u32`, `index: u8` |
//! | `0x05` | `FSet` | `key: u32`, `index: u8`, `value: u64` |
//! | `0x06` | `Txn` | `key: u32`, `nparts: u8`, then parts (tags `0x02`/`0x03`/`0x05` with the key omitted) |
//! | `0x07` | `Commit` | — |
//! | `0x08` | `Scan` | `start: u32`, `end: u32`, `limit: u32` (v2 only) |
//!
//! A `Scan` bound is a key *index*, or exactly `key_space` to mean
//! "unbounded on that side"; the scanned range is `[key_name(start),
//! key_name(end))` in lexicographic name order, at most `limit` entries.
//!
//! Version 1 (`b"ESPWTR01"`) differs only in the magic and in tag `0x08`
//! being invalid; [`Trace::decode`] still accepts v1 files byte-for-byte,
//! while [`Trace::encode`] always emits v2.
//!
//! Decode validates everything (tags, key range, field indices, value
//! lengths, txn part counts, scan bounds and limits) and rejects trailing
//! bytes, so a corrupt or truncated trace fails loudly instead of
//! replaying garbage.

use crate::scenario::{Scenario, Skew};
use crate::{WorkloadError, MAX_SCAN_LIMIT, MAX_VALUE_LEN, NUM_FIELDS};

/// Trace file magic; the last two bytes are the format version.
pub const TRACE_MAGIC: [u8; 8] = *b"ESPWTR02";

/// The previous format's magic: identical layout minus the `Scan` op.
/// [`Trace::decode`] accepts both so recorded v1 artifacts keep replaying.
pub const TRACE_MAGIC_V1: [u8; 8] = *b"ESPWTR01";

/// Most parts a generated [`Op::Txn`] carries (the server protocol caps
/// transactions far higher; generated ones stay small and readable).
pub const MAX_TXN_PARTS: usize = 8;

/// One part of a single-key transaction; the key lives on the enclosing
/// [`Op::Txn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnPart {
    /// Replace the key's value.
    Set(Vec<u8>),
    /// Delete the key.
    Del,
    /// Write one numbered field.
    FSet(u8, u64),
}

/// One replayable operation against a keyed store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Read the value of key `wk{0}`.
    Get(u32),
    /// Write a value.
    Set(u32, Vec<u8>),
    /// Delete the key (value and fields).
    Del(u32),
    /// Read field `{1}` of the key.
    FGet(u32, u8),
    /// Write field `{1}` of the key.
    FSet(u32, u8, u64),
    /// Apply the parts to one key atomically, in order.
    Txn(u32, Vec<TxnPart>),
    /// Seal an epoch; durability of the sealed epoch depends on the
    /// backend's flush pipeline (and the replay fault window).
    Commit,
    /// Range scan: keys in `[key_name(start), key_name(end))` by
    /// lexicographic name, at most `{2}` entries. A bound equal to the
    /// trace's `key_space` is unbounded on that side; valueless entries
    /// (typed fields only) are skipped, mirroring the server's `SCAN`.
    Scan(u32, u32, u32),
}

/// Resolves a [`Op::Scan`] bound index to the key-name bound every
/// backend scans by: `key_name(idx)`, or the empty string ("unbounded")
/// when `idx` equals `key_space`.
pub fn scan_bound(idx: u32, key_space: u32) -> String {
    if idx >= key_space {
        String::new()
    } else {
        key_name(idx)
    }
}

/// A decoded trace: header fields plus the op list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Number of distinct keys the ops draw from (`wk0..wkN-1`).
    pub key_space: u32,
    /// Seed the trace was generated from (informational once recorded).
    pub seed: u64,
    /// The operations, in replay order.
    pub ops: Vec<Op>,
}

/// Canonical name of key index `i` across every backend.
pub fn key_name(i: u32) -> String {
    format!("wk{i}")
}

impl Trace {
    /// Serializes to the v2 binary format described in the module docs.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.ops.len() * 8);
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&self.key_space.to_be_bytes());
        out.extend_from_slice(&self.seed.to_be_bytes());
        out.extend_from_slice(&(self.ops.len() as u64).to_be_bytes());
        for op in &self.ops {
            match op {
                Op::Get(k) => {
                    out.push(0x01);
                    out.extend_from_slice(&k.to_be_bytes());
                }
                Op::Set(k, v) => {
                    out.push(0x02);
                    out.extend_from_slice(&k.to_be_bytes());
                    out.extend_from_slice(&(v.len() as u32).to_be_bytes());
                    out.extend_from_slice(v);
                }
                Op::Del(k) => {
                    out.push(0x03);
                    out.extend_from_slice(&k.to_be_bytes());
                }
                Op::FGet(k, i) => {
                    out.push(0x04);
                    out.extend_from_slice(&k.to_be_bytes());
                    out.push(*i);
                }
                Op::FSet(k, i, v) => {
                    out.push(0x05);
                    out.extend_from_slice(&k.to_be_bytes());
                    out.push(*i);
                    out.extend_from_slice(&v.to_be_bytes());
                }
                Op::Txn(k, parts) => {
                    out.push(0x06);
                    out.extend_from_slice(&k.to_be_bytes());
                    out.push(parts.len() as u8);
                    for part in parts {
                        match part {
                            TxnPart::Set(v) => {
                                out.push(0x02);
                                out.extend_from_slice(&(v.len() as u32).to_be_bytes());
                                out.extend_from_slice(v);
                            }
                            TxnPart::Del => out.push(0x03),
                            TxnPart::FSet(i, v) => {
                                out.push(0x05);
                                out.push(*i);
                                out.extend_from_slice(&v.to_be_bytes());
                            }
                        }
                    }
                }
                Op::Commit => out.push(0x07),
                Op::Scan(start, end, limit) => {
                    out.push(0x08);
                    out.extend_from_slice(&start.to_be_bytes());
                    out.extend_from_slice(&end.to_be_bytes());
                    out.extend_from_slice(&limit.to_be_bytes());
                }
            }
        }
        out
    }

    /// Parses and fully validates a trace (v2, or the scan-free v1).
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Trace`] on a bad magic/version, truncation, an
    /// unknown tag (including `Scan` inside a v1 file), out-of-range
    /// keys/fields/lengths/bounds, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Trace, WorkloadError> {
        let mut r = Reader {
            bytes,
            at: 0,
            version: 2,
        };
        let magic = r.take::<8>()?;
        if magic == TRACE_MAGIC_V1 {
            r.version = 1;
        } else if magic != TRACE_MAGIC {
            return Err(WorkloadError::Trace(format!(
                "bad magic {:02x?} (expected {:02x?} or {:02x?} — not a trace file)",
                magic, TRACE_MAGIC, TRACE_MAGIC_V1
            )));
        }
        let key_space = u32::from_be_bytes(r.take::<4>()?);
        if key_space == 0 || key_space > crate::scenario::MAX_KEY_SPACE {
            return Err(WorkloadError::Trace(format!(
                "key_space {key_space} out of range"
            )));
        }
        let seed = u64::from_be_bytes(r.take::<8>()?);
        let op_count = u64::from_be_bytes(r.take::<8>()?);
        // Each op is at least 1 byte, so op_count can't exceed what's left.
        if op_count > (bytes.len() - r.at) as u64 {
            return Err(WorkloadError::Trace(format!(
                "op_count {op_count} exceeds remaining {} bytes",
                bytes.len() - r.at
            )));
        }
        let mut ops = Vec::with_capacity(op_count as usize);
        for n in 0..op_count {
            let op = r
                .op(key_space)
                .map_err(|e| WorkloadError::Trace(format!("op {n}: {e}")))?;
            ops.push(op);
        }
        if r.at != bytes.len() {
            return Err(WorkloadError::Trace(format!(
                "{} trailing bytes after op {op_count}",
                bytes.len() - r.at
            )));
        }
        Ok(Trace {
            key_space,
            seed,
            ops,
        })
    }

    /// Writes the encoded trace to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), WorkloadError> {
        std::fs::write(path.as_ref(), self.encode()).map_err(WorkloadError::Io)
    }

    /// Reads and decodes a trace file.
    ///
    /// # Errors
    ///
    /// I/O failures plus everything [`decode`](Self::decode) rejects.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Trace, WorkloadError> {
        let bytes = std::fs::read(path.as_ref()).map_err(WorkloadError::Io)?;
        Trace::decode(&bytes)
    }
}

struct Reader<'b> {
    bytes: &'b [u8],
    at: usize,
    /// Format version from the magic: gates which op tags are legal.
    version: u8,
}

impl Reader<'_> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N], WorkloadError> {
        let end = self.at + N;
        if end > self.bytes.len() {
            return Err(WorkloadError::Trace(format!(
                "truncated at byte {} (needed {N} more)",
                self.at
            )));
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.bytes[self.at..end]);
        self.at = end;
        Ok(out)
    }

    fn take_vec(&mut self, n: usize) -> Result<Vec<u8>, WorkloadError> {
        let end = self.at + n;
        if end > self.bytes.len() {
            return Err(WorkloadError::Trace(format!(
                "truncated at byte {} (needed {n} more)",
                self.at
            )));
        }
        let out = self.bytes[self.at..end].to_vec();
        self.at = end;
        Ok(out)
    }

    fn key(&mut self, key_space: u32) -> Result<u32, WorkloadError> {
        let k = u32::from_be_bytes(self.take::<4>()?);
        if k >= key_space {
            return Err(WorkloadError::Trace(format!(
                "key {k} outside key_space {key_space}"
            )));
        }
        Ok(k)
    }

    fn field(&mut self) -> Result<u8, WorkloadError> {
        let i = self.take::<1>()?[0];
        if i as usize >= NUM_FIELDS {
            return Err(WorkloadError::Trace(format!(
                "field index {i} outside 0..{NUM_FIELDS}"
            )));
        }
        Ok(i)
    }

    fn value(&mut self) -> Result<Vec<u8>, WorkloadError> {
        let len = u32::from_be_bytes(self.take::<4>()?) as usize;
        if len > MAX_VALUE_LEN {
            return Err(WorkloadError::Trace(format!(
                "value length {len} exceeds {MAX_VALUE_LEN}"
            )));
        }
        self.take_vec(len)
    }

    fn op(&mut self, key_space: u32) -> Result<Op, WorkloadError> {
        let tag = self.take::<1>()?[0];
        Ok(match tag {
            0x01 => Op::Get(self.key(key_space)?),
            0x02 => {
                let k = self.key(key_space)?;
                Op::Set(k, self.value()?)
            }
            0x03 => Op::Del(self.key(key_space)?),
            0x04 => {
                let k = self.key(key_space)?;
                Op::FGet(k, self.field()?)
            }
            0x05 => {
                let k = self.key(key_space)?;
                let i = self.field()?;
                Op::FSet(k, i, u64::from_be_bytes(self.take::<8>()?))
            }
            0x06 => {
                let k = self.key(key_space)?;
                let nparts = self.take::<1>()?[0] as usize;
                if nparts == 0 || nparts > MAX_TXN_PARTS {
                    return Err(WorkloadError::Trace(format!(
                        "txn part count {nparts} outside 1..={MAX_TXN_PARTS}"
                    )));
                }
                let mut parts = Vec::with_capacity(nparts);
                for _ in 0..nparts {
                    parts.push(match self.take::<1>()?[0] {
                        0x02 => TxnPart::Set(self.value()?),
                        0x03 => TxnPart::Del,
                        0x05 => {
                            let i = self.field()?;
                            TxnPart::FSet(i, u64::from_be_bytes(self.take::<8>()?))
                        }
                        other => {
                            return Err(WorkloadError::Trace(format!(
                                "unknown txn part tag {other:#04x}"
                            )))
                        }
                    });
                }
                Op::Txn(k, parts)
            }
            0x07 => Op::Commit,
            0x08 if self.version >= 2 => {
                let start = u32::from_be_bytes(self.take::<4>()?);
                let end = u32::from_be_bytes(self.take::<4>()?);
                if start > key_space || end > key_space {
                    return Err(WorkloadError::Trace(format!(
                        "scan bound {}/{} outside 0..={key_space}",
                        start, end
                    )));
                }
                let limit = u32::from_be_bytes(self.take::<4>()?);
                if limit == 0 || limit > MAX_SCAN_LIMIT {
                    return Err(WorkloadError::Trace(format!(
                        "scan limit {limit} outside 1..={MAX_SCAN_LIMIT}"
                    )));
                }
                Op::Scan(start, end, limit)
            }
            0x08 => {
                return Err(WorkloadError::Trace(
                    "scan op tag 0x08 in a v1 trace".to_string(),
                ))
            }
            other => return Err(WorkloadError::Trace(format!("unknown op tag {other:#04x}"))),
        })
    }
}

// ---- generation ----

/// xorshift64* — tiny, seedable, and good enough for op mixing. Same
/// generator the server's load module uses, duplicated here so trace
/// bytes never change if the load tool evolves.
pub(crate) struct Rng(u64);

impl Rng {
    pub(crate) fn new(seed: u64) -> Rng {
        // A zero state would be absorbing; fold in a constant like SplitMix
        // does rather than silently remapping seed 0 onto some other seed.
        Rng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `0..n` (n > 0).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `0.0..1.0`.
    pub(crate) fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// CDF-table zipfian key picker; `theta = 0` degenerates to uniform.
struct KeyPicker {
    cdf: Option<Vec<f64>>,
    n: u64,
}

impl KeyPicker {
    fn new(key_space: u32, skew: Skew) -> KeyPicker {
        match skew {
            Skew::Uniform => KeyPicker {
                cdf: None,
                n: key_space as u64,
            },
            Skew::Zipfian { theta } => {
                let mut weights = Vec::with_capacity(key_space as usize);
                let mut total = 0.0;
                for i in 0..key_space {
                    let w = 1.0 / ((i + 1) as f64).powf(theta);
                    total += w;
                    weights.push(total);
                }
                for w in &mut weights {
                    *w /= total;
                }
                KeyPicker {
                    cdf: Some(weights),
                    n: key_space as u64,
                }
            }
        }
    }

    fn pick(&self, rng: &mut Rng) -> u32 {
        match &self.cdf {
            None => rng.below(self.n) as u32,
            Some(cdf) => {
                let p = rng.unit();
                cdf.partition_point(|&c| c < p).min(cdf.len() - 1) as u32
            }
        }
    }
}

fn gen_value(rng: &mut Rng, value_len: (u32, u32)) -> Vec<u8> {
    // Printable [a-z0-9] so every backend can hold the value (minidb
    // stores values as UTF-8 text) and hex dumps stay readable.
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    let len = value_len.0 + rng.below((value_len.1 - value_len.0 + 1) as u64) as u32;
    (0..len)
        .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize])
        .collect()
}

/// Expands a scenario into its canonical trace. Pure function of the
/// scenario: same config, same bytes, every time.
pub fn record(scenario: &Scenario) -> Trace {
    let mut rng = Rng::new(scenario.seed);
    let picker = KeyPicker::new(scenario.key_space, scenario.skew);
    let mix = scenario.mix;
    // Cumulative thresholds over 0..100 in declaration order.
    let t_get = mix.get;
    let t_set = t_get + mix.set;
    let t_del = t_set + mix.del;
    let t_fget = t_del + mix.fget;
    let t_fset = t_fget + mix.fset;
    let t_txn = t_fset + mix.txn;
    let mut ops = Vec::with_capacity(scenario.ops as usize + 2);
    for n in 0..scenario.ops {
        let key = picker.pick(&mut rng);
        let roll = rng.below(100) as u32;
        let op = if roll < t_get {
            Op::Get(key)
        } else if roll < t_set {
            Op::Set(key, gen_value(&mut rng, scenario.value_len))
        } else if roll < t_del {
            Op::Del(key)
        } else if roll < t_fget {
            Op::FGet(key, rng.below(NUM_FIELDS as u64) as u8)
        } else if roll < t_fset {
            Op::FSet(key, rng.below(NUM_FIELDS as u64) as u8, rng.next())
        } else if roll < t_txn {
            let nparts = 2 + rng.below(3) as usize;
            let parts = (0..nparts)
                .map(|_| match rng.below(100) {
                    0..=39 => TxnPart::Set(gen_value(&mut rng, scenario.value_len)),
                    40..=79 => TxnPart::FSet(rng.below(NUM_FIELDS as u64) as u8, rng.next()),
                    _ => TxnPart::Del,
                })
                .collect();
            Op::Txn(key, parts)
        } else {
            // Scan: mostly a window between two picked keys (ordered by
            // key *name* — backends scan lexicographically), sometimes the
            // full unbounded range. The already-picked `key` is one bound,
            // so scan-free scenarios consume the RNG exactly as before.
            let limit = 1 + rng.below(u64::from(scenario.key_space.min(MAX_SCAN_LIMIT))) as u32;
            if rng.below(4) == 0 {
                Op::Scan(scenario.key_space, scenario.key_space, limit)
            } else {
                let other = picker.pick(&mut rng);
                let (lo, hi) = if key_name(key) <= key_name(other) {
                    (key, other)
                } else {
                    (other, key)
                };
                Op::Scan(lo, hi, limit)
            }
        };
        ops.push(op);
        if scenario.commit_every > 0 && (n + 1) % scenario.commit_every == 0 {
            ops.push(Op::Commit);
        }
    }
    // Always seal whatever the tail wrote so a fault-free replay ends on
    // a durable state.
    if ops.last() != Some(&Op::Commit) {
        ops.push(Op::Commit);
    }
    Trace {
        key_space: scenario.key_space,
        seed: scenario.seed,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::OpMix;

    fn scenario(ops: u64) -> Scenario {
        Scenario {
            name: "t".into(),
            key_space: 16,
            ops,
            seed: 42,
            value_len: (4, 12),
            mix: OpMix {
                get: 30,
                set: 30,
                del: 10,
                fget: 10,
                fset: 10,
                txn: 10,
                scan: 0,
            },
            skew: Skew::Uniform,
            commit_every: 25,
            faults: None,
        }
    }

    #[test]
    fn record_is_deterministic() {
        let s = scenario(200);
        assert_eq!(record(&s).encode(), record(&s).encode());
        let mut other = s.clone();
        other.seed = 43;
        assert_ne!(record(&other).encode(), record(&s).encode());
    }

    #[test]
    fn encode_decode_round_trips() {
        let t = record(&scenario(300));
        let decoded = Trace::decode(&t.encode()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn commit_interleaving_and_final_seal() {
        let t = record(&scenario(50));
        let commits = t.ops.iter().filter(|o| **o == Op::Commit).count();
        assert_eq!(commits, 2, "one per 25 ops, final already on a boundary");
        assert_eq!(t.ops.last(), Some(&Op::Commit));
        let mut s = scenario(26);
        s.commit_every = 25;
        let t = record(&s);
        assert_eq!(t.ops.iter().filter(|o| **o == Op::Commit).count(), 2);
    }

    #[test]
    fn zipf_prefers_low_keys() {
        let mut s = scenario(2000);
        s.skew = Skew::Zipfian { theta: 0.99 };
        s.mix = OpMix {
            get: 100,
            set: 0,
            del: 0,
            fget: 0,
            fset: 0,
            txn: 0,
            scan: 0,
        };
        let t = record(&s);
        let hot = t
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Get(k) if *k < 2))
            .count();
        // With theta=0.99 over 16 keys the top two take ~45% of picks;
        // uniform would give 12.5%.
        assert!(hot > t.ops.len() / 4, "hot keys took {hot}/{}", t.ops.len());
    }

    #[test]
    fn decode_rejects_corruption() {
        let t = record(&scenario(20));
        let good = t.encode();
        assert!(Trace::decode(&good[..good.len() - 1]).is_err(), "truncated");
        let mut bad_magic = good.clone();
        bad_magic[7] = b'9';
        assert!(Trace::decode(&bad_magic).is_err(), "bad version byte");
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(Trace::decode(&trailing).is_err(), "trailing byte");
        // Key outside key_space: header says 16 keys; patch first op's key.
        let mut bad_key = good;
        // Header is 8 + 4 + 8 + 8 = 28 bytes, then tag byte, then key u32.
        bad_key[29..33].copy_from_slice(&999u32.to_be_bytes());
        assert!(Trace::decode(&bad_key).is_err(), "key out of range");
    }

    #[test]
    fn scan_free_v1_traces_still_decode() {
        // A v1 file is a v2 file with the old magic and no scan ops.
        let t = record(&scenario(40));
        assert!(!t.ops.iter().any(|o| matches!(o, Op::Scan(..))));
        let mut v1 = t.encode();
        v1[..8].copy_from_slice(&TRACE_MAGIC_V1);
        assert_eq!(Trace::decode(&v1).unwrap(), t);
    }

    #[test]
    fn scan_ops_record_validate_and_round_trip() {
        let mut s = scenario(300);
        s.mix.get = 10;
        s.mix.scan = 20;
        let t = record(&s);
        let scans: Vec<&Op> = t.ops.iter().filter(|o| matches!(o, Op::Scan(..))).collect();
        assert!(!scans.is_empty(), "scan mix produced no scans");
        let mut saw_full_range = false;
        for op in &scans {
            let Op::Scan(start, end, limit) = op else {
                unreachable!()
            };
            assert!(*start <= s.key_space && *end <= s.key_space);
            assert!(*limit >= 1 && *limit <= MAX_SCAN_LIMIT);
            if *start == s.key_space && *end == s.key_space {
                saw_full_range = true;
            } else {
                assert!(
                    scan_bound(*start, s.key_space) <= scan_bound(*end, s.key_space),
                    "bounded scan not name-ordered: {op:?}"
                );
            }
        }
        assert!(saw_full_range, "300 ops at 20% scan never drew full-range");
        assert_eq!(Trace::decode(&t.encode()).unwrap(), t);

        // The same trace under a v1 magic must be rejected at its scan op.
        let mut v1 = t.encode();
        v1[..8].copy_from_slice(&TRACE_MAGIC_V1);
        let err = Trace::decode(&v1).unwrap_err();
        assert!(format!("{err}").contains("0x08"), "{err}");
    }

    #[test]
    fn scan_bound_resolves_edges() {
        assert_eq!(scan_bound(3, 16), "wk3");
        assert_eq!(scan_bound(16, 16), "");
        assert_eq!(scan_bound(99, 16), "");
    }
}
