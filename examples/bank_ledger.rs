//! A crash-safe bank ledger on persistent collections: accounts in a
//! `PHashMap`, an append-only audit trail in a `PArrayList`, every
//! transfer wrapped in an undo-logged transaction, and an explicit
//! commit point as the durability boundary — the fine-grained
//! persistence programming model of §3 without any ORM.
//!
//! Run with: `cargo run --example bank_ledger`

use espresso::collections::{PArrayList, PHashMap, PStore};
use espresso::heap::{HeapManager, LoadOptions, PjhConfig, PjhError};

fn transfer(
    store: &mut PStore,
    accounts: &PHashMap,
    log: &PArrayList,
    from: u64,
    to: u64,
    amount: u64,
) -> Result<bool, PjhError> {
    let from_balance = accounts.get(store, from).unwrap_or(0);
    if from_balance < amount {
        return Ok(false);
    }
    let to_balance = accounts.get(store, to).unwrap_or(0);
    // One ACID transaction: both balances plus the audit record move
    // together, whatever the crash point.
    store.begin();
    accounts.put(store, from, from_balance - amount)?;
    accounts.put(store, to, to_balance + amount)?;
    log.push(store, from << 32 | to << 16 | amount)?;
    store.commit();
    Ok(true)
}

fn main() -> Result<(), PjhError> {
    let mgr = HeapManager::temp()?;
    let ledger = mgr.create("ledger", 16 << 20, PjhConfig::default())?;
    let mut store = PStore::open(&ledger)?;

    let accounts = PHashMap::pnew(&mut store, 64)?;
    let log = PArrayList::pnew(&mut store, 16)?;
    store.heap_mut().set_root("accounts", accounts.as_ref())?;
    store.heap_mut().set_root("audit", log.as_ref())?;

    for id in 0..8 {
        accounts.put(&mut store, id, 1000)?;
    }
    for i in 0..100u64 {
        transfer(&mut store, &accounts, &log, i % 8, (i + 3) % 8, 50)?;
    }
    let total: u64 = accounts.entries(&store).iter().map(|&(_, v)| v).sum();
    println!(
        "before commit: total balance = {total}, audit entries = {}",
        log.len(&store)
    );

    // The explicit durability boundary: everything above reaches the image.
    let commit = ledger.commit_sync()?;
    println!(
        "commit point taken ({} lines / {} bytes synced)",
        commit.synced_lines, commit.synced_bytes
    );

    // More transfers *after* the commit point: durable on the device, but
    // never synced to the image — a process death discards them, exactly
    // like power failing after the last commit.
    for i in 0..20u64 {
        transfer(&mut store, &accounts, &log, i % 8, (i + 5) % 8, 25)?;
    }

    // "Process death": drop every handle, then reload from the image.
    drop(store);
    drop(ledger);
    let ledger = mgr.load("ledger", LoadOptions::default())?;
    let store = PStore::open(&ledger)?; // crash recovery already ran on load
    let accounts = PHashMap::from_ref(store.heap().get_root("accounts").unwrap());
    let log = PArrayList::from_ref(store.heap().get_root("audit").unwrap());
    let total: u64 = accounts.entries(&store).iter().map(|&(_, v)| v).sum();
    println!(
        "after reload:  total balance = {total}, audit entries = {}",
        log.len(&store)
    );
    assert_eq!(total, 8000, "money is conserved across the crash");
    assert_eq!(log.len(&store), 100, "exactly the committed transfers");
    Ok(())
}
