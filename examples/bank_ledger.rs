//! A crash-safe bank ledger on persistent collections: accounts in a
//! `PHashMap`, an append-only audit trail in a `PArrayList`, and every
//! transfer wrapped in an undo-logged transaction — the fine-grained
//! persistence programming model of §3 without any ORM.
//!
//! Run with: `cargo run --example bank_ledger`

use espresso::collections::{PArrayList, PHashMap, PStore};
use espresso::heap::{LoadOptions, Pjh, PjhConfig, PjhError};
use espresso::nvm::{NvmConfig, NvmDevice};

fn transfer(
    store: &mut PStore,
    accounts: &PHashMap,
    log: &PArrayList,
    from: u64,
    to: u64,
    amount: u64,
) -> Result<bool, PjhError> {
    let from_balance = accounts.get(store, from).unwrap_or(0);
    if from_balance < amount {
        return Ok(false);
    }
    let to_balance = accounts.get(store, to).unwrap_or(0);
    // One ACID transaction: both balances plus the audit record move
    // together, whatever the crash point.
    store.begin();
    accounts.put(store, from, from_balance - amount)?;
    accounts.put(store, to, to_balance + amount)?;
    log.push(store, from << 32 | to << 16 | amount)?;
    store.commit();
    Ok(true)
}

fn main() -> Result<(), PjhError> {
    let dev = NvmDevice::new(NvmConfig::with_size(16 << 20));
    let pjh = Pjh::create(dev.clone(), PjhConfig::default())?;
    let mut store = PStore::new(pjh)?;

    let accounts = PHashMap::pnew(&mut store, 64)?;
    let log = PArrayList::pnew(&mut store, 16)?;
    store.heap_mut().set_root("accounts", accounts.as_ref())?;
    store.heap_mut().set_root("audit", log.as_ref())?;

    for id in 0..8 {
        accounts.put(&mut store, id, 1000)?;
    }
    for i in 0..100u64 {
        transfer(&mut store, &accounts, &log, i % 8, (i + 3) % 8, 50)?;
    }
    let total: u64 = accounts.entries(&store).iter().map(|&(_, v)| v).sum();
    println!(
        "before crash: total balance = {total}, audit entries = {}",
        log.len(&store)
    );

    // Power failure mid-run; reload and verify the invariant.
    dev.crash();
    let (heap, _) = Pjh::load(dev, LoadOptions::default())?;
    let store = PStore::attach(heap)?; // rolls back any torn transaction
    let accounts = PHashMap::from_ref(store.heap().get_root("accounts").unwrap());
    let log = PArrayList::from_ref(store.heap().get_root("audit").unwrap());
    let total: u64 = accounts.entries(&store).iter().map(|&(_, v)| v).sum();
    println!(
        "after crash:  total balance = {total}, audit entries = {}",
        log.len(&store)
    );
    assert_eq!(total, 8000, "money is conserved across the crash");
    Ok(())
}
