//! Demonstrates §4 end to end: a power failure in the *middle of a
//! persistent-heap garbage collection*, followed by recovery at load time
//! — the mark bitmap, timestamp, and region-done protocol in action —
//! driven through the **typed** object API: the live list is declared as
//! a schema, walked through `ref<Node>` handles, and re-validated after
//! the crash.
//!
//! Run with: `cargo run --example crash_recovery`

use espresso::heap::{LoadOptions, PObject, Pjh, PjhConfig, PjhError, Schema};
use espresso::nvm::{NvmConfig, NvmDevice};

struct Node;
impl PObject for Node {
    const CLASS_NAME: &'static str = "Node";
    fn schema() -> Schema {
        Schema::builder("Node")
            .u64_field("v")
            .ref_field::<Node>("next")
            .build()
    }
}

fn main() -> Result<(), PjhError> {
    let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
    let mut heap = Pjh::create(dev.clone(), PjhConfig::small())?;
    let node = heap.register::<Node>()?;
    let v = node.field::<u64>("v")?;
    let next = node.ref_field::<Node>("next")?;

    // A live list interleaved with garbage, so the GC has real work.
    let mut head = None;
    for i in 0..500u64 {
        heap.alloc::<Node>()?; // garbage
        let n = heap.alloc::<Node>()?;
        heap.put(n, v, i);
        heap.put_ref(n, next, head)?;
        heap.flush(n);
        head = Some(n);
    }
    heap.set_root_typed("list", head.expect("built 500 nodes"))?;
    println!(
        "before GC: {} object images on the heap",
        heap.census().objects
    );

    // Schedule a power failure after 40 more cache-line flushes — deep
    // inside the compaction phase — then start a collection.
    dev.schedule_crash_after_line_flushes(40);
    heap.gc(&[])?;
    println!("power failed mid-collection (flushes after the 40th were lost)");

    // Reboot: recovery (§4.3) finishes the collection from the persisted
    // mark bitmap, region-done bitmap, and timestamps. Re-registering the
    // schema re-validates the declaration against the recovered image.
    dev.recover();
    let (mut heap, report) = Pjh::load(dev, LoadOptions::default())?;
    println!("loadHeap: recovered_gc = {}", report.recovered_gc);
    let node = heap.register::<Node>()?;
    let v = node.field::<u64>("v")?;
    let next = node.ref_field::<Node>("next")?;

    // The live list is intact, in order — walked through typed refs.
    let mut cur = heap.root::<Node>("list")?;
    let mut expected = 499u64;
    let mut count = 0;
    while let Some(n) = cur {
        assert_eq!(heap.get(n, v), expected);
        expected = expected.wrapping_sub(1);
        cur = heap.get_ref(n, next);
        count += 1;
    }
    heap.verify_integrity().expect("structurally sound");
    println!("verified {count} live nodes after crash-recovery; garbage reclaimed");
    println!(
        "census now: {} object images, {} free regions",
        heap.census().objects,
        heap.census().free_regions
    );
    Ok(())
}
