//! Demonstrates §4 end to end: a power failure in the *middle of a
//! persistent-heap garbage collection*, followed by recovery at load time
//! — the mark bitmap, timestamp, and region-done protocol in action.
//!
//! Run with: `cargo run --example crash_recovery`

use espresso::heap::{LoadOptions, Pjh, PjhConfig, PjhError};
use espresso::nvm::{NvmConfig, NvmDevice};
use espresso::object::{FieldDesc, Ref};

fn main() -> Result<(), PjhError> {
    let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
    let mut heap = Pjh::create(dev.clone(), PjhConfig::small())?;
    let node = heap.register_instance(
        "Node",
        vec![FieldDesc::prim("v"), FieldDesc::reference("next")],
    )?;

    // A live list interleaved with garbage, so the GC has real work.
    let mut head = Ref::NULL;
    for i in 0..500u64 {
        heap.alloc_instance(node)?; // garbage
        let n = heap.alloc_instance(node)?;
        heap.set_field(n, 0, i);
        heap.set_field_ref(n, 1, head)?;
        heap.flush_object(n);
        head = n;
    }
    heap.set_root("list", head)?;
    println!(
        "before GC: {} object images on the heap",
        heap.census().objects
    );

    // Schedule a power failure after 40 more cache-line flushes — deep
    // inside the compaction phase — then start a collection.
    dev.schedule_crash_after_line_flushes(40);
    heap.gc(&[])?;
    println!("power failed mid-collection (flushes after the 40th were lost)");

    // Reboot: recovery (§4.3) finishes the collection from the persisted
    // mark bitmap, region-done bitmap, and timestamps.
    dev.recover();
    let (heap, report) = Pjh::load(dev, LoadOptions::default())?;
    println!("loadHeap: recovered_gc = {}", report.recovered_gc);

    // The live list is intact, in order.
    let mut cur = heap.get_root("list").expect("root survived");
    let mut expected = 499u64;
    let mut count = 0;
    while !cur.is_null() {
        assert_eq!(heap.field(cur, 0), expected);
        expected = expected.wrapping_sub(1);
        cur = heap.field_ref(cur, 1);
        count += 1;
    }
    heap.verify_integrity().expect("structurally sound");
    println!("verified {count} live nodes after crash-recovery; garbage reclaimed");
    println!(
        "census now: {} object images, {} free regions",
        heap.census().objects,
        heap.census().free_regions
    );
    Ok(())
}
