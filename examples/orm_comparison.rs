//! Side-by-side run of the two persistence pipelines of the paper (§2.1
//! vs §5): the same application code against H2-JPA (object -> SQL text ->
//! parse -> execute) and H2-PJO (object -> DBPersistable -> execute), with
//! the phase breakdown printed for each.
//!
//! Run with: `cargo run --release --example orm_comparison`

use espresso::heap::{Pjh, PjhConfig};
use espresso::jpa::{EntityManager, EntityMeta};
use espresso::minidb::{ColType, Database, Value};
use espresso::nvm::{NvmConfig, NvmDevice};
use espresso::pjo::PjoEntityManager;
use std::time::Instant;

fn person_meta() -> EntityMeta {
    EntityMeta::builder("person")
        .pk_field("id", ColType::Int)
        .field("name", ColType::Text)
        .field("age", ColType::Int)
        .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: i64 = 2000;
    let meta = person_meta();

    // ---- H2-JPA ----
    let jpa_db = Database::create(NvmDevice::new(NvmConfig::with_size(32 << 20)))?;
    let mut jpa = EntityManager::new(jpa_db.connect());
    jpa.create_schema(&[&meta])?;
    let t0 = Instant::now();
    jpa.begin();
    for id in 0..N {
        let mut p = meta.instantiate();
        p.set(0, Value::Int(id));
        p.set(1, Value::Str(format!("Person{id}")));
        p.set(2, Value::Int(20 + id % 50));
        jpa.persist(p);
    }
    jpa.commit()?;
    let jpa_time = t0.elapsed();
    let jpa_stats = jpa.stats();
    let jpa_db_stats = jpa_db.stats();

    // ---- H2-PJO ----
    let pjo_db = Database::create(NvmDevice::new(NvmConfig::with_size(32 << 20)))?;
    let pjh = Pjh::create(
        NvmDevice::new(NvmConfig::with_size(64 << 20)),
        PjhConfig::default(),
    )?;
    let mut pjo = PjoEntityManager::new(pjo_db.connect(), pjh);
    pjo.set_dedup(true); // also keep NVM copies for cheap retrieves
    pjo.create_schema(&[&meta])?;
    let t0 = Instant::now();
    pjo.begin();
    for id in 0..N {
        let mut p = meta.instantiate();
        p.set(0, Value::Int(id));
        p.set(1, Value::Str(format!("Person{id}")));
        p.set(2, Value::Int(20 + id % 50));
        pjo.persist(p);
    }
    pjo.commit()?;
    let pjo_time = t0.elapsed();
    let pjo_stats = pjo.stats();
    let pjo_db_stats = pjo_db.stats();

    println!("persisting {N} Person entities:\n");
    println!(
        "H2-JPA: {:7.2} ms total | transformation {:6.2} ms | sql parse {:6.2} ms | db exec {:6.2} ms",
        jpa_time.as_secs_f64() * 1e3,
        jpa_stats.transformation_ns as f64 / 1e6,
        jpa_db_stats.parse_ns as f64 / 1e6,
        (jpa_db_stats.exec_ns + jpa_db_stats.wal_ns) as f64 / 1e6,
    );
    println!(
        "H2-PJO: {:7.2} ms total | ship          {:6.2} ms | sql parse {:6.2} ms | db exec {:6.2} ms | dedup copies {:6.2} ms",
        pjo_time.as_secs_f64() * 1e3,
        pjo_stats.ship_ns as f64 / 1e6,
        pjo_db_stats.parse_ns as f64 / 1e6,
        (pjo_db_stats.exec_ns + pjo_db_stats.wal_ns) as f64 / 1e6,
        pjo_stats.dedup_ns as f64 / 1e6,
    );
    println!(
        "\nPJO speedup on create: {:.2}x",
        jpa_time.as_secs_f64() / pjo_time.as_secs_f64()
    );
    assert_eq!(pjo_db_stats.parse_ns, 0, "the PJO path never parses SQL");

    // Retrieval: PJO answers from the deduplicated NVM copies.
    let mut p = pjo.find(&meta, &Value::Int(42))?.expect("present");
    println!(
        "pjo.find(42) from NVM copy: name = {:?}, dedup hits = {}",
        p.get(1),
        pjo.stats().dedup_hits
    );
    p.set(2, Value::Int(99));
    pjo.begin();
    pjo.merge(p);
    pjo.commit()?; // field-level tracking ships only the age column
    Ok(())
}
