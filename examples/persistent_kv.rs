//! A tiny persistent key-value service built on the unified VM: volatile
//! cache objects in DRAM referencing persistent records in NVM — the
//! mixed DRAM/NVM pointer model of §3.4, with both collectors cooperating.
//!
//! Run with: `cargo run --example persistent_kv`

use espresso::object::FieldDesc;
use espresso::vm::{Vm, VmConfig, VmError};

fn main() -> Result<(), VmError> {
    let mut vm = Vm::with_persistent_heap(VmConfig::default(), 32 << 20)?;
    // A persistent record and a volatile cache wrapper around it.
    vm.define_class(
        "Record",
        vec![
            FieldDesc::prim("key"),
            FieldDesc::prim("value"),
            FieldDesc::reference("next"),
        ],
    )?;
    vm.define_class(
        "CacheEntry",
        vec![FieldDesc::prim("hits"), FieldDesc::reference("record")],
    )?;

    // Build a persistent linked list of 1000 records (pnew).
    let mut head = espresso::object::Ref::NULL;
    for k in 0..1000u64 {
        let r = vm.pnew_instance("Record")?;
        vm.set_field(r, 0, k);
        vm.set_field(r, 1, k * k);
        vm.set_field_ref(r, 2, head)?;
        vm.flush_object(r);
        head = r;
    }
    vm.set_root("records", head)?;

    // Volatile cache entries point into NVM (DRAM -> NVM pointers).
    let mut cache = Vec::new();
    let mut cur = head;
    for _ in 0..10 {
        let e = vm.new_instance("CacheEntry")?;
        vm.set_field_ref(e, 1, cur)?;
        cache.push(vm.add_handle(e));
        cur = vm.field_ref(cur, 2);
    }

    // Churn both heaps: volatile garbage + persistent garbage, then
    // collect each with cross-heap roots.
    for _ in 0..5000 {
        vm.new_instance("CacheEntry")?;
    }
    for _ in 0..2000 {
        vm.pnew_instance("Record")?;
    }
    let vr = vm.gc_full()?;
    let pr = vm.gc_persistent()?;
    println!("volatile full GC: {} survivors", vr.survivors);
    println!(
        "persistent GC: {} live, {} moved, {} regions free",
        pr.live_objects, pr.moved_objects, pr.free_regions
    );

    // Every cache entry still reaches its (possibly relocated) record.
    for (i, h) in cache.iter().enumerate() {
        let e = vm.handle(*h).expect("handle survives");
        let rec = vm.field_ref(e, 1);
        let key = vm.field(rec, 0);
        let value = vm.field(rec, 1);
        assert_eq!(value, key * key);
        if i < 3 {
            println!("cache[{i}] -> record key={key} value={value}");
        }
    }
    vm.pjh()
        .unwrap()
        .verify_integrity()
        .expect("heap is structurally sound");
    println!("all cache entries verified after both collections");
    Ok(())
}
