//! Quickstart: open a session-based heap manager, allocate objects with
//! the `pnew` path through a live `HeapHandle`, take an explicit commit
//! point, survive a "reboot", and read the data back (§3.3, Figure 11's
//! "Jimmy" example).
//!
//! Run with: `cargo run --example quickstart`

use espresso::heap::{HeapManager, LoadOptions, PjhConfig, PjhError};
use espresso::object::FieldDesc;

fn main() -> Result<(), PjhError> {
    let mgr = HeapManager::temp()?;

    // Check if the heap exists; create it otherwise (Figure 11).
    if !mgr.exists_heap("Jimmy") {
        println!("heap 'Jimmy' does not exist; creating it");
        let jimmy = mgr.create("Jimmy", 8 << 20, PjhConfig::default())?;
        let alice = jimmy.with_mut(|heap| {
            let person = heap.register_instance(
                "Person",
                vec![FieldDesc::prim("id"), FieldDesc::reference("friend")],
            )?;
            // Person p = pnew Person(...); two friends pointing at each other.
            let alice = heap.alloc_instance(person)?;
            let bob = heap.alloc_instance(person)?;
            heap.set_field(alice, 0, 1);
            heap.set_field(bob, 0, 2);
            heap.set_field_ref(alice, 1, bob)?;
            heap.set_field_ref(bob, 1, alice)?;
            // Application-level persistence is explicit (§3.5).
            heap.flush_object(alice);
            heap.flush_object(bob);
            heap.set_root("Jimmy_info", alice)?;
            Ok::<_, PjhError>(alice)
        })?;

        // Loading while the heap is open returns the *same* live instance —
        // no copy, no image traffic.
        let same = mgr.load("Jimmy", LoadOptions::default())?;
        assert_eq!(same.with(|h| h.get_root("Jimmy_info")), Some(alice));

        // The explicit durability boundary: an incremental image sync of
        // exactly the cache lines persisted since the last commit.
        let commit = jimmy.commit_sync()?;
        println!(
            "committed Alice (id 1) and Bob (id 2): {} lines / {} bytes synced",
            commit.synced_lines, commit.synced_bytes
        );
    }

    // "After a system reboot": every handle is gone, so loading maps the
    // committed image and runs the loading pipeline.
    let jimmy = mgr.load("Jimmy", LoadOptions::default())?;
    let report = jimmy.load_report();
    println!(
        "loaded heap: {} klasses reinitialized in place, recovered_gc={}",
        report.klasses_reloaded, report.recovered_gc
    );
    jimmy.with(|heap| {
        let alice = heap.get_root("Jimmy_info").expect("root survives restarts");
        let bob = heap.field_ref(alice, 1);
        println!(
            "alice.id = {}, alice.friend.id = {}, friend.friend == alice: {}",
            heap.field(alice, 0),
            heap.field(bob, 0),
            heap.field_ref(bob, 1) == alice
        );
        let census = heap.census();
        println!(
            "census: {} objects, {} words",
            census.objects, census.object_words
        );
    });
    Ok(())
}
