//! Quickstart on the **typed** object API: declare a schema, allocate
//! with `pnew`-style `alloc::<T>()` inside a transaction, publish a typed
//! root, take an explicit commit point, survive a "reboot", and read the
//! data back in a read-only session — §3.3's "Jimmy" example (Figure 11)
//! with persistent objects that feel like ordinary language objects, and
//! zero positional `field(index)` calls.
//!
//! Run with: `cargo run --example quickstart`

use espresso::heap::{HeapManager, LoadOptions, PObject, PjhConfig, PjhError, Schema};

/// `@Persistent class Person { long id; double karma; Person friend;
/// String name; }` — the declaration is the schema; the marker type
/// anchors the typed API.
struct Person;

impl PObject for Person {
    const CLASS_NAME: &'static str = "Person";
    fn schema() -> Schema {
        Schema::builder("Person")
            .u64_field("id")
            .f64_field("karma")
            .ref_field::<Person>("friend")
            .str_field("name")
            .build()
    }
}

fn main() -> Result<(), PjhError> {
    let mgr = HeapManager::temp()?;

    // Check if the heap exists; create it otherwise (Figure 11).
    if !mgr.exists_heap("Jimmy") {
        println!("heap 'Jimmy' does not exist; creating it");
        let jimmy = mgr.create("Jimmy", 8 << 20, PjhConfig::default())?;

        // Registering the schema validates it against the heap's
        // persisted Klass table and schema fingerprint — on a fresh heap
        // it records the declaration; after a reload it re-checks it.
        let person = jimmy.register::<Person>()?;
        let id = person.field::<u64>("id")?;
        let karma = person.field::<f64>("karma")?;
        let friend = person.ref_field::<Person>("friend")?;
        let name = person.str_field("name")?;

        // Person alice = pnew Person(...): typed allocation inside an
        // undo-logged transaction — every store is logged and persisted,
        // so the pair of friends appears atomically.
        let alice = jimmy.txn(|t| {
            let alice = t.alloc::<Person>()?;
            let bob = t.alloc::<Person>()?;
            t.set(alice, id, 1u64);
            t.set(alice, karma, 99.5);
            t.set_str(alice, name, "Alice")?;
            t.set(bob, id, 2u64);
            t.set(bob, karma, 64.0);
            t.set_str(bob, name, "Bob")?;
            t.set_ref(alice, friend, Some(bob))?;
            t.set_ref(bob, friend, Some(alice))?;
            Ok(alice)
        })?;
        jimmy.set_root_typed("Jimmy_info", alice)?;

        // Loading while the heap is open returns the *same* live
        // instance — no copy, no image traffic.
        let same = mgr.load("Jimmy", LoadOptions::default())?;
        assert_eq!(same.root::<Person>("Jimmy_info")?, Some(alice));

        // The explicit durability boundary: an incremental image sync of
        // exactly the cache lines persisted since the last commit.
        let commit = jimmy.commit_sync()?;
        println!(
            "committed Alice (id 1) and Bob (id 2): {} lines / {} bytes synced",
            commit.synced_lines, commit.synced_bytes
        );
    }

    // "After a system reboot": every handle is gone, so loading maps the
    // committed image — and re-registering the schema re-validates the
    // declaration against what the image persisted.
    let jimmy = mgr.load("Jimmy", LoadOptions::default())?;
    let report = jimmy.load_report();
    println!(
        "loaded heap: {} klasses reinitialized in place, recovered_gc={}",
        report.klasses_reloaded, report.recovered_gc
    );
    let person = jimmy.register::<Person>()?;
    let id = person.field::<u64>("id")?;
    let karma = person.field::<f64>("karma")?;
    let friend = person.ref_field::<Person>("friend")?;
    let name = person.str_field("name")?;

    // A read-only session: the shared read guard exposes every typed
    // getter, and concurrent readers do not serialize behind writers.
    {
        let heap = jimmy.read();
        let alice = heap
            .root::<Person>("Jimmy_info")?
            .expect("root survives restarts");
        let bob = heap.get_ref(alice, friend).expect("alice has a friend");
        println!(
            "{}(id {}, karma {}) <-> {}(id {}, karma {}), mutual: {}",
            heap.get_str(alice, name).unwrap_or_default(),
            heap.get(alice, id),
            heap.get(alice, karma),
            heap.get_str(bob, name).unwrap_or_default(),
            heap.get(bob, id),
            heap.get(bob, karma),
            heap.get_ref(bob, friend) == Some(alice),
        );
        let census = heap.census();
        println!(
            "census: {} objects, {} words",
            census.objects, census.object_words
        );
    }

    // The schema-evolution guard: in a fresh session, a declaration whose
    // field types drifted from the image is rejected against the
    // *persisted* fingerprint — a real error instead of silently
    // reinterpreting words.
    struct DriftedPerson;
    impl PObject for DriftedPerson {
        const CLASS_NAME: &'static str = "Person";
        fn schema() -> Schema {
            Schema::builder("Person")
                .f64_field("id") // was u64!
                .f64_field("karma")
                .ref_field::<DriftedPerson>("friend")
                .str_field("name")
                .build()
        }
    }
    drop(jimmy); // close the session; the next load maps the image anew
    let fresh = mgr.load("Jimmy", LoadOptions::default())?;
    let err = fresh.register::<DriftedPerson>().unwrap_err();
    println!("drifted schema rejected as expected: {err}");
    Ok(())
}
