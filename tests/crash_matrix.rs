//! Scenario-driven crash matrix: replay workload traces with fault
//! schedules (flush-pause windows + crash-after-op-N) against every
//! embedded backend, and require each recovery to match the
//! durable-prefix oracle — a second fresh backend replaying exactly the
//! ops the crash should have preserved.
//!
//! These are the op-granularity descendants of the old hand-scripted
//! crash sweeps (now `tests/flush_crash_sweeps.rs`): what used to be a
//! bespoke Rust scenario per subsystem is now a `Scenario` value — or a
//! JSON file under `workloads/` — and one assertion covers raw, typed,
//! sharded, and minidb at once.

use espresso_workload::replay::{expected_recovery_digest, replay};
use espresso_workload::{make_backend, BackendKind, FaultSchedule, OpMix, Scenario, Skew, Trace};

/// Every backend that supports fault injection (the TCP server's heap
/// lives behind the socket, so it sits the crash matrix out).
const FAULTABLE: [BackendKind; 4] = [
    BackendKind::Raw,
    BackendKind::Typed,
    BackendKind::Sharded,
    BackendKind::Minidb,
];

fn base_scenario(name: &str, seed: u64) -> Scenario {
    Scenario {
        name: name.into(),
        key_space: 24,
        ops: 180,
        seed,
        value_len: (6, 24),
        mix: OpMix {
            get: 25,
            set: 30,
            del: 10,
            fget: 10,
            fset: 12,
            txn: 8,
            scan: 5,
        },
        skew: Skew::Uniform,
        commit_every: 30,
        faults: None,
    }
}

/// Crash `scenario` at each schedule and check the recovered digest
/// against the oracle, on every faultable backend.
fn assert_recovery(scenario: &Scenario, schedules: &[FaultSchedule]) {
    let trace = espresso_workload::record(scenario);
    for faults in schedules {
        for kind in FAULTABLE {
            let mut backend = make_backend(kind, trace.key_space).unwrap();
            let report = replay(backend.as_mut(), &trace, Some(faults)).unwrap();
            assert!(report.crashed, "{kind}: crash was not injected");
            let expected = expected_recovery_digest(kind, &trace, faults).unwrap();
            // State digest, not the combined one: the crashed run may
            // have scanned past the durable prefix, and those result
            // sets are legitimately unpredictable from the prefix.
            assert_eq!(
                report.state_digest, expected,
                "{kind}: recovery after crash@{} (pause@{:?}) diverged from the \
                 durable-prefix oracle",
                faults.crash_after_op, faults.flush_pause_from_op
            );
        }
    }
}

#[test]
fn crash_between_commits_recovers_the_last_durable_epoch() {
    let scenario = base_scenario("crash_between_commits", 7);
    // Commits land at trace indices 30, 61, 92, ... (every 30 data ops
    // plus the interleaved Commit itself). Crash just after, mid-epoch,
    // and right before a commit.
    assert_recovery(
        &scenario,
        &[
            FaultSchedule {
                crash_after_op: 35,
                flush_pause_from_op: None,
            },
            FaultSchedule {
                crash_after_op: 75,
                flush_pause_from_op: None,
            },
            FaultSchedule {
                crash_after_op: 91,
                flush_pause_from_op: None,
            },
        ],
    );
}

#[test]
fn crash_before_any_commit_recovers_empty() {
    let scenario = base_scenario("crash_early", 11);
    assert_recovery(
        &scenario,
        &[FaultSchedule {
            crash_after_op: 10,
            flush_pause_from_op: None,
        }],
    );
}

#[test]
fn paused_flush_pipeline_loses_sealed_epochs() {
    // The lagging-pipeline shape: the pause window opens mid-trace, so
    // commits sealed inside it queue without flushing and the crash
    // discards them — recovery must land on the last commit *before*
    // the window, not the last commit executed.
    let scenario = base_scenario("crash_paused_pipeline", 13);
    assert_recovery(
        &scenario,
        &[
            FaultSchedule {
                crash_after_op: 120,
                flush_pause_from_op: Some(70),
            },
            // Window opens at op 0: nothing ever durable on the heap
            // backends, everything preserved on minidb.
            FaultSchedule {
                crash_after_op: 60,
                flush_pause_from_op: Some(0),
            },
        ],
    );
}

#[test]
fn zipfian_txn_heavy_crash() {
    // Hot keys + transactions: the staged-root path (del-then-set,
    // set-then-del) gets rewritten repeatedly on a few keys before the
    // crash.
    let mut scenario = base_scenario("crash_txn_heavy", 17);
    scenario.skew = Skew::Zipfian { theta: 0.99 };
    scenario.mix = OpMix {
        get: 10,
        set: 25,
        del: 10,
        fget: 5,
        fset: 15,
        txn: 25,
        scan: 10,
    };
    assert_recovery(
        &scenario,
        &[FaultSchedule {
            crash_after_op: 150,
            flush_pause_from_op: Some(100),
        }],
    );
}

#[test]
fn checked_in_crash_scenario_recovers() {
    // The shipped config, end to end: load the JSON, record, replay
    // with its own fault schedule, check the oracle — exactly what
    // `workload replay --faults` does.
    let scenario = Scenario::load(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../workloads/crash_mid_burst.json"
    ))
    .unwrap();
    let faults = scenario.faults.expect("crash scenario declares faults");
    let trace = espresso_workload::record(&scenario);
    for kind in FAULTABLE {
        let mut backend = make_backend(kind, trace.key_space).unwrap();
        let report = replay(backend.as_mut(), &trace, Some(&faults)).unwrap();
        let expected = expected_recovery_digest(kind, &trace, &faults).unwrap();
        assert_eq!(
            report.state_digest, expected,
            "{kind} diverged on crash_mid_burst"
        );
    }
}

#[test]
fn recovered_heap_stays_writable_and_convergent() {
    // After a crash-recovery, keep replaying the tail of the trace on
    // the survivor: it must converge with a fresh backend that replayed
    // durable-prefix + tail directly.
    let scenario = base_scenario("crash_then_continue", 23);
    let trace = espresso_workload::record(&scenario);
    let faults = FaultSchedule {
        crash_after_op: 95,
        flush_pause_from_op: None,
    };
    for kind in [BackendKind::Raw, BackendKind::Typed] {
        let mut survivor = make_backend(kind, trace.key_space).unwrap();
        replay(survivor.as_mut(), &trace, Some(&faults)).unwrap();
        let prefix = espresso_workload::durable_prefix(&trace, &faults, survivor.durability());
        let tail = Trace {
            key_space: trace.key_space,
            seed: trace.seed,
            ops: trace.ops[prefix..].to_vec(),
        };
        let after = replay(survivor.as_mut(), &tail, None).unwrap();

        let mut oracle = make_backend(kind, trace.key_space).unwrap();
        let direct = replay(oracle.as_mut(), &trace, None).unwrap();
        // The tail replay only folds the tail's scans while the direct
        // run folds them all, so only final states are comparable here.
        assert_eq!(
            after.state_digest, direct.state_digest,
            "{kind}: resumed replay after recovery diverged from an uncrashed run"
        );
    }
}
