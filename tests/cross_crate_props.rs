//! Property-based tests spanning crates: random workloads against model
//! implementations, with crash/reload cycles interleaved.

use espresso::collections::{PArrayList, PHashMap, PStore};
use espresso::heap::{LoadOptions, Pjh, PjhConfig};
use espresso::nvm::{NvmConfig, NvmDevice};
use espresso::object::{FieldDesc, Ref};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum MapOp {
    Put(u8, u64),
    Remove(u8),
    Get(u8),
    CrashReload,
    Gc,
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        4 => (any::<u8>(), any::<u64>()).prop_map(|(k, v)| MapOp::Put(k % 32, v % 1000)),
        2 => any::<u8>().prop_map(|k| MapOp::Remove(k % 32)),
        3 => any::<u8>().prop_map(|k| MapOp::Get(k % 32)),
        1 => Just(MapOp::CrashReload),
        1 => Just(MapOp::Gc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn phashmap_matches_model_across_crashes_and_gcs(ops in proptest::collection::vec(map_op(), 1..60)) {
        let dev = NvmDevice::new(NvmConfig::with_size(16 << 20));
        let mut store = PStore::new(Pjh::create(dev.clone(), PjhConfig::small()).unwrap()).unwrap();
        let map = PHashMap::pnew(&mut store, 8).unwrap();
        store.heap_mut().set_root("m", map.as_ref()).unwrap();
        let mut map = map;
        let mut model = std::collections::HashMap::<u64, u64>::new();
        for op in ops {
            match op {
                MapOp::Put(k, v) => {
                    prop_assert_eq!(map.put(&mut store, k as u64, v).unwrap(), model.insert(k as u64, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(map.remove(&mut store, k as u64).unwrap(), model.remove(&(k as u64)));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(map.get(&store, k as u64), model.get(&(k as u64)).copied());
                }
                MapOp::CrashReload => {
                    dev.crash();
                    let (heap, _) = Pjh::load(dev.clone(), LoadOptions::default()).unwrap();
                    store = PStore::attach(heap).unwrap();
                    map = PHashMap::from_ref(store.heap().get_root("m").unwrap());
                }
                MapOp::Gc => {
                    store.gc(&[]).unwrap();
                    map = PHashMap::from_ref(store.heap().get_root("m").unwrap());
                    store.heap().verify_integrity().unwrap();
                }
            }
            prop_assert_eq!(map.len(&store), model.len());
        }
    }

    #[test]
    fn parraylist_matches_vec_model(pushes in proptest::collection::vec(any::<u64>(), 1..80),
                                    gc_at in 0usize..80) {
        let dev = NvmDevice::new(NvmConfig::with_size(16 << 20));
        let mut store = PStore::new(Pjh::create(dev, PjhConfig::small()).unwrap()).unwrap();
        let mut list = PArrayList::pnew(&mut store, 2).unwrap();
        store.heap_mut().set_root("l", list.as_ref()).unwrap();
        let mut model = Vec::new();
        for (i, v) in pushes.iter().enumerate() {
            list.push(&mut store, *v).unwrap();
            model.push(*v);
            if i == gc_at {
                store.gc(&[]).unwrap();
                list = PArrayList::from_ref(store.heap().get_root("l").unwrap());
            }
        }
        prop_assert_eq!(list.to_vec(&store), model);
    }

    #[test]
    fn random_object_graphs_survive_gc(edges in proptest::collection::vec((0u8..40, 0u8..40), 1..80)) {
        let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
        let mut heap = Pjh::create(dev, PjhConfig::small()).unwrap();
        let k = heap.register_instance("N", vec![FieldDesc::prim("id"), FieldDesc::reference("edge")]).unwrap();
        let nodes: Vec<Ref> = (0..40u64)
            .map(|i| {
                let n = heap.alloc_instance(k).unwrap();
                heap.set_field(n, 0, i);
                n
            })
            .collect();
        // Random edges, then root a random subset via the name table.
        for &(a, b) in &edges {
            heap.set_field_ref(nodes[a as usize], 1, nodes[b as usize]).unwrap();
        }
        for (i, &(a, _)) in edges.iter().enumerate().take(5) {
            heap.set_root(&format!("r{i}"), nodes[a as usize]).unwrap();
        }
        // Garbage + collect.
        for _ in 0..100 {
            heap.alloc_instance(k).unwrap();
        }
        heap.gc(&[]).unwrap();
        heap.verify_integrity().unwrap();
        // Every rooted node is reachable with its id intact, and edges
        // still point at nodes with the right ids.
        for (i, &(a, b)) in edges.iter().enumerate().take(5) {
            let n = heap.get_root(&format!("r{i}")).unwrap();
            prop_assert_eq!(heap.field(n, 0), a as u64);
            let e = heap.field_ref(n, 1);
            if !e.is_null() {
                // The edge field was overwritten by later edges from the
                // same source; its target id must be one of the declared
                // targets for that source.
                let tid = heap.field(e, 0);
                let valid = edges.iter().any(|&(x, y)| x == a && y as u64 == tid) || tid == b as u64;
                prop_assert!(valid, "node {} has unexpected edge target {}", a, tid);
            }
        }
    }
}
