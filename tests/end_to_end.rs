//! Cross-crate integration: the full Espresso stack exercised the way the
//! paper's evaluation does — VM + PJH + collections + both ORM providers
//! against the embedded database, across simulated restarts.

use espresso::collections::{PArrayList, PHashMap, PStore};
use espresso::heap::{HeapManager, LoadOptions, Pjh, PjhConfig, SafetyLevel};
use espresso::jpa::{EntityManager, EntityMeta};
use espresso::minidb::{ColType, Database, Value};
use espresso::nvm::{NvmConfig, NvmDevice};
use espresso::object::FieldDesc;
use espresso::pjo::PjoEntityManager;
use espresso::vm::{Vm, VmConfig};

#[test]
fn vm_objects_survive_restart_through_the_manager() {
    let mgr = HeapManager::temp().unwrap();
    let app = mgr.create("app", 8 << 20, PjhConfig::default()).unwrap();
    app.with_mut(|heap| {
        let k = heap
            .register_instance(
                "Account",
                vec![FieldDesc::prim("balance"), FieldDesc::reference("next")],
            )
            .unwrap();
        let mut head = espresso::object::Ref::NULL;
        for i in 0..100 {
            let a = heap.alloc_instance(k).unwrap();
            heap.set_field(a, 0, i * 10);
            heap.set_field_ref(a, 1, head).unwrap();
            heap.flush_object(a);
            head = a;
        }
        heap.set_root("accounts", head).unwrap();
    });
    app.commit_sync().unwrap();
    drop(app); // close the session so the load below maps the image

    // "Reboot" into a VM that attaches the reloaded heap. The VM owns its
    // persistent heap outright, so take the loading pipeline directly —
    // the managed image on disk is exactly the committed state.
    let handle = mgr.load("app", LoadOptions::default()).unwrap();
    assert_eq!(handle.load_report().klasses_reloaded, 1);
    let dev = handle.with(|h| h.device().clone());
    drop(handle);
    let (pjh, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
    let mut vm = Vm::new(VmConfig::default());
    vm.define_class(
        "Account",
        vec![FieldDesc::prim("balance"), FieldDesc::reference("next")],
    )
    .unwrap();
    vm.attach_pjh(pjh);
    let mut cur = vm.get_root("accounts").unwrap();
    let mut sum = 0;
    while !cur.is_null() {
        assert!(vm.instance_of(cur, "Account"));
        sum += vm.field(cur, 0);
        cur = vm.field_ref(cur, 1);
    }
    assert_eq!(sum, (0..100).map(|i| i * 10).sum::<u64>());
}

#[test]
fn collections_and_gc_interact_across_restarts() {
    let dev = NvmDevice::new(NvmConfig::with_size(16 << 20));
    let pjh = Pjh::create(dev.clone(), PjhConfig::small()).unwrap();
    let mut store = PStore::new(pjh).unwrap();
    let map = PHashMap::pnew(&mut store, 16).unwrap();
    let list = PArrayList::pnew(&mut store, 8).unwrap();
    store.heap_mut().set_root("map", map.as_ref()).unwrap();
    store.heap_mut().set_root("list", list.as_ref()).unwrap();
    for i in 0..200 {
        map.put(&mut store, i, i * 7).unwrap();
        list.push(&mut store, i).unwrap();
    }
    // Garbage + GC + crash + reload, twice.
    for _ in 0..2 {
        let pk = store.heap_mut().register_prim_array();
        for _ in 0..300 {
            store.alloc_array(pk, 32).unwrap();
        }
        store.gc(&[]).unwrap();
        dev.crash();
        let (heap, _) = Pjh::load(dev.clone(), LoadOptions::default()).unwrap();
        store = PStore::attach(heap).unwrap();
    }
    let map = PHashMap::from_ref(store.heap().get_root("map").unwrap());
    let list = PArrayList::from_ref(store.heap().get_root("list").unwrap());
    for i in 0..200 {
        assert_eq!(map.get(&store, i), Some(i * 7));
        assert_eq!(list.get(&store, i as usize), Some(i));
    }
    store.heap().verify_integrity().unwrap();
}

#[test]
fn both_orm_providers_agree_on_results() {
    let meta = EntityMeta::builder("person")
        .pk_field("id", ColType::Int)
        .field("name", ColType::Text)
        .field("age", ColType::Int)
        .build();

    let jpa_db = Database::create(NvmDevice::new(NvmConfig::with_size(8 << 20))).unwrap();
    let mut jpa = EntityManager::new(jpa_db.connect());
    jpa.create_schema(&[&meta]).unwrap();

    let pjo_db = Database::create(NvmDevice::new(NvmConfig::with_size(8 << 20))).unwrap();
    let pjh = Pjh::create(
        NvmDevice::new(NvmConfig::with_size(16 << 20)),
        PjhConfig::small(),
    )
    .unwrap();
    let mut pjo = PjoEntityManager::new(pjo_db.connect(), pjh);
    pjo.set_dedup(true);
    pjo.create_schema(&[&meta]).unwrap();

    // The same application script against both providers.
    jpa.begin();
    pjo.begin();
    for id in 0..50 {
        let mut o = meta.instantiate();
        o.set(0, Value::Int(id));
        o.set(1, Value::Str(format!("P{id}")));
        o.set(2, Value::Int(20 + id));
        jpa.persist(o.clone());
        pjo.persist(o);
    }
    jpa.commit().unwrap();
    pjo.commit().unwrap();

    for id in (0..50).step_by(7) {
        let a = jpa.find(&meta, &Value::Int(id)).unwrap().unwrap();
        let b = pjo.find(&meta, &Value::Int(id)).unwrap().unwrap();
        assert_eq!(
            a.values_vec(),
            b.values_vec(),
            "providers disagree on entity {id}"
        );
    }

    // Update through both; field-level tracking on PJO must not lose data.
    let mut a = jpa.find(&meta, &Value::Int(7)).unwrap().unwrap();
    let mut b = pjo.find(&meta, &Value::Int(7)).unwrap().unwrap();
    a.set(2, Value::Int(999));
    b.set(2, Value::Int(999));
    jpa.begin();
    jpa.merge(a);
    jpa.commit().unwrap();
    pjo.begin();
    pjo.merge(b);
    pjo.commit().unwrap();
    let a = jpa.find(&meta, &Value::Int(7)).unwrap().unwrap();
    let b = pjo.find(&meta, &Value::Int(7)).unwrap().unwrap();
    assert_eq!(a.values_vec(), b.values_vec());
}

#[test]
fn zeroing_safety_protects_reloaded_heaps_with_dram_pointers() {
    let dev = NvmDevice::new(NvmConfig::with_size(8 << 20));
    {
        let mut vm = Vm::new(VmConfig::small());
        vm.define_class(
            "Holder",
            vec![FieldDesc::prim("v"), FieldDesc::reference("obj")],
        )
        .unwrap();
        vm.attach_pjh(Pjh::create(dev.clone(), PjhConfig::small()).unwrap());
        let dram = vm.new_instance("Holder").unwrap();
        let nvm = vm.pnew_instance("Holder").unwrap();
        vm.set_field(nvm, 0, 5);
        vm.set_field_ref(nvm, 1, dram).unwrap(); // NVM -> DRAM pointer
        vm.flush_object(nvm);
        vm.set_root("holder", nvm).unwrap();
    }
    dev.crash(); // the DRAM side of that pointer is gone forever
    let (heap, report) = Pjh::load(
        dev,
        LoadOptions {
            safety: SafetyLevel::Zeroing,
            ..LoadOptions::default()
        },
    )
    .unwrap();
    assert_eq!(report.zeroed_refs, 1);
    let nvm = heap.get_root("holder").unwrap();
    assert!(
        heap.field_ref(nvm, 1).is_null(),
        "dangling DRAM pointer nullified"
    );
    assert_eq!(heap.field(nvm, 0), 5);
}
