//! Smoke test: every checked-in example must build and run to completion.
//!
//! Each example is executed through `cargo run --example` so this test fails
//! if an example rots — whether it stops compiling or starts erroring at
//! runtime. Examples are expected to be self-contained and fast (they run on
//! simulated NVM, no real I/O).

use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "persistent_kv",
    "crash_recovery",
    "bank_ledger",
    "orm_comparison",
];

fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = Command::new(cargo);
    cmd.args(["run", "-q", "-p", "espresso", "--example", name]);
    if !cfg!(debug_assertions) {
        cmd.arg("--release");
    }
    let output = cmd
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn persistent_kv_runs() {
    run_example("persistent_kv");
}

#[test]
fn crash_recovery_runs() {
    run_example("crash_recovery");
}

#[test]
fn bank_ledger_runs() {
    run_example("bank_ledger");
}

#[test]
fn orm_comparison_runs() {
    run_example("orm_comparison");
}

#[test]
fn example_list_matches_directory() {
    // Guard against a new example being added without a smoke test above.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let mut found: Vec<String> = std::fs::read_dir(dir)
        .expect("examples directory exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    found.sort();
    let mut expected: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    expected.sort();
    assert_eq!(
        found, expected,
        "examples/ directory and smoke-test list diverged"
    );
}
