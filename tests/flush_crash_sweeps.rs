//! Flush-granularity failure injection: for each subsystem, sweep power
//! failures over every cache-line flush boundary of a scripted workload
//! and require a consistent recovery at each point.
//!
//! This is the fine-grained companion to `tests/crash_matrix.rs`, which
//! injects *op-granularity* crashes through the workload harness's
//! scenario fault schedules. Keep both: scenarios cover cross-backend
//! recovery convergence, these sweeps cover single-flush torn states no
//! scenario can express.

use espresso::collections::{PHashMap, PStore};
use espresso::heap::{LoadOptions, Pjh, PjhConfig};
use espresso::minidb::{Database, Value};
use espresso::nvm::{NvmConfig, NvmDevice};
use espresso::object::FieldDesc;

fn clone_device(src: &NvmDevice) -> NvmDevice {
    let image = src.snapshot_persisted();
    let dev = NvmDevice::new(NvmConfig::with_size(src.size()));
    dev.write_bytes(0, &image);
    dev.persist(0, image.len());
    dev
}

#[test]
fn pjh_allocation_crash_sweep() {
    // Base image: heap with a klass registered and some objects.
    let base = NvmDevice::new(NvmConfig::with_size(4 << 20));
    let mut heap = Pjh::create(base.clone(), PjhConfig::small()).unwrap();
    let k = heap
        .register_instance("T", vec![FieldDesc::prim("x")])
        .unwrap();
    for _ in 0..5 {
        heap.alloc_instance(k).unwrap();
    }
    // Count flushes of one allocation.
    let f0 = base.stats().line_flushes;
    heap.alloc_instance(k).unwrap();
    let per_alloc = base.stats().line_flushes - f0;

    for at in 0..=per_alloc {
        let dev = clone_device(&base);
        let (mut h, _) = Pjh::load(dev.clone(), LoadOptions::default()).unwrap();
        let objs_before = h.census().objects;
        dev.schedule_crash_after_line_flushes(at);
        let _ = h.alloc_instance(k);
        dev.recover();
        let (h2, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        let objs_after = h2.census().objects;
        assert!(
            objs_after == objs_before || objs_after == objs_before + 1,
            "crash after {at} flushes left {objs_after} objects (had {objs_before})"
        );
        h2.verify_integrity()
            .unwrap_or_else(|e| panic!("crash after {at}: {e}"));
    }
}

#[test]
fn collection_transaction_crash_sweep() {
    let base = NvmDevice::new(NvmConfig::with_size(8 << 20));
    let mut store = PStore::new(Pjh::create(base.clone(), PjhConfig::small()).unwrap()).unwrap();
    let map = PHashMap::pnew(&mut store, 8).unwrap();
    store.heap_mut().set_root("m", map.as_ref()).unwrap();
    for i in 0..10 {
        map.put(&mut store, i, i).unwrap();
    }
    let f0 = base.stats().line_flushes;
    map.put(&mut store, 100, 100).unwrap();
    let per_put = base.stats().line_flushes - f0;

    for at in 0..=per_put {
        let dev = clone_device(&base);
        let (heap, _) = Pjh::load(dev.clone(), LoadOptions::default()).unwrap();
        let mut st = PStore::attach(heap).unwrap();
        let m = PHashMap::from_ref(st.heap().get_root("m").unwrap());
        dev.schedule_crash_after_line_flushes(at);
        let _ = m.put(&mut st, 200, 42);
        dev.recover();
        let (heap2, _) = Pjh::load(dev, LoadOptions::default()).unwrap();
        let st2 = PStore::attach(heap2).unwrap();
        let m2 = PHashMap::from_ref(st2.heap().get_root("m").unwrap());
        // Atomicity: the new entry is fully there or fully absent; old
        // entries never corrupted.
        let v = m2.get(&st2, 200);
        assert!(v == Some(42) || v.is_none(), "crash after {at}: got {v:?}");
        for i in 0..10 {
            assert_eq!(
                m2.get(&st2, i),
                Some(i),
                "crash after {at} corrupted key {i}"
            );
        }
    }
}

#[test]
fn database_commit_crash_sweep() {
    let base = NvmDevice::new(NvmConfig::with_size(4 << 20));
    {
        let db = Database::create(base.clone()).unwrap();
        let mut conn = db.connect();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        conn.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    }
    // Count flushes of one committed transaction.
    let probe = clone_device(&base);
    let f0 = probe.stats().line_flushes;
    {
        let db = Database::open(probe.clone()).unwrap();
        let mut conn = db.connect();
        conn.execute("BEGIN").unwrap();
        conn.execute("INSERT INTO t VALUES (2, 20)").unwrap();
        conn.execute("UPDATE t SET v = 11 WHERE id = 1").unwrap();
        conn.execute("COMMIT").unwrap();
    }
    let per_txn = probe.stats().line_flushes - f0;

    for at in 0..=per_txn {
        let dev = clone_device(&base);
        let db = Database::open(dev.clone()).unwrap();
        let mut conn = db.connect();
        dev.schedule_crash_after_line_flushes(at);
        conn.execute("BEGIN").unwrap();
        conn.execute("INSERT INTO t VALUES (2, 20)").unwrap();
        conn.execute("UPDATE t SET v = 11 WHERE id = 1").unwrap();
        let _ = conn.execute("COMMIT");
        dev.recover();
        let db2 = Database::open(dev).unwrap();
        let mut c2 = db2.connect();
        let rows = c2.execute("SELECT * FROM t").unwrap().rows;
        let committed = rows.len() == 2 && rows[0][1] == Value::Int(11);
        let rolled_back = rows.len() == 1 && rows[0][1] == Value::Int(10);
        assert!(
            committed || rolled_back,
            "crash after {at}/{per_txn} flushes left a torn transaction: {rows:?}"
        );
    }
}
