//! Property tests for the session-based heap API: shared `HeapHandle`s,
//! `txn` abort-on-panic, and `ShardedHeap` commit→reload durability.

use espresso::heap::{HeapManager, LoadOptions, PjhConfig, PjhError, ShardedHeap};
use espresso::object::FieldDesc;
use proptest::prelude::*;

fn rec_fields() -> Vec<FieldDesc> {
    vec![FieldDesc::prim("a"), FieldDesc::prim("b")]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Two handles obtained for the same heap name are one live instance:
    /// any interleaving of writes through either is observed by both,
    /// field for field.
    #[test]
    fn two_handles_to_one_name_observe_each_others_writes(
        writes in proptest::collection::vec((any::<bool>(), 0usize..8, any::<u64>()), 1..40),
    ) {
        let mgr = HeapManager::temp().unwrap();
        let a = mgr.create("shared", 4 << 20, PjhConfig::small()).unwrap();
        let b = mgr.load("shared", LoadOptions::default()).unwrap();
        let objs = a.with_mut(|h| {
            let k = h.register_instance("Rec", rec_fields()).unwrap();
            (0..8).map(|_| h.alloc_instance(k).unwrap()).collect::<Vec<_>>()
        });
        let mut model = [0u64; 8];
        for (via_b, i, v) in writes {
            let writer = if via_b { &b } else { &a };
            writer.with_mut(|h| h.set_field(objs[i], 0, v));
            model[i] = v;
        }
        for (i, obj) in objs.iter().enumerate() {
            prop_assert_eq!(a.with(|h| h.field(*obj, 0)), model[i]);
            prop_assert_eq!(b.with(|h| h.field(*obj, 0)), model[i]);
        }
    }

    /// A transaction that panics mid-flight aborts: every logged store is
    /// rolled back to its pre-transaction value, and the heap stays
    /// usable afterwards.
    #[test]
    fn txn_panic_restores_pre_state(
        committed in proptest::collection::vec(any::<u64>(), 4..5),
        torn in proptest::collection::vec((0usize..4, any::<u64>()), 1..12),
    ) {
        let mgr = HeapManager::temp().unwrap();
        let handle = mgr.create("txn", 4 << 20, PjhConfig::small()).unwrap();
        let objs = handle.with_mut(|h| {
            let k = h.register_instance("Rec", rec_fields()).unwrap();
            (0..4).map(|_| h.alloc_instance(k).unwrap()).collect::<Vec<_>>()
        });
        // Committed baseline state.
        handle.txn(|t| {
            for (i, v) in committed.iter().enumerate() {
                t.set_field(objs[i], 0, *v);
            }
            Ok(())
        }).unwrap();
        // A transaction that applies `torn` stores, then panics.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Result<(), PjhError> = handle.txn(|t| {
                for (i, v) in &torn {
                    t.set_field(objs[*i], 0, *v);
                }
                panic!("power struggle");
            });
        }));
        prop_assert!(caught.is_err());
        for (i, v) in committed.iter().enumerate() {
            prop_assert_eq!(handle.with(|h| h.field(objs[i], 0)), *v,
                "panic must roll back to the committed value");
        }
        // Still usable: the next transaction commits normally.
        handle.txn(|t| { t.set_field(objs[0], 1, 77); Ok(()) }).unwrap();
        prop_assert_eq!(handle.with(|h| h.field(objs[0], 1)), 77);
    }

    /// ShardedHeap: roots written through the façade survive a
    /// commit→close→reload cycle on every shard, whatever the key mix.
    #[test]
    fn sharded_roots_survive_commit_reload_per_shard(
        key_ids in proptest::collection::vec(0u32..10_000, 1..24),
        shards in 1usize..5,
    ) {
        let keys: std::collections::BTreeSet<String> =
            key_ids.iter().map(|id| format!("user{id}")).collect();
        let mgr = HeapManager::temp().unwrap();
        let sh = ShardedHeap::create(&mgr, "props", shards, 4 << 20, PjhConfig::small()).unwrap();
        let k = sh.register_instance("Rec", rec_fields()).unwrap();
        let mut expect = Vec::new();
        for (n, key) in keys.iter().enumerate() {
            let r = sh.alloc_instance(key, &k).unwrap();
            sh.txn(key, |t| { t.set_field(r.r, 0, n as u64); Ok(()) }).unwrap();
            sh.set_root(key, r).unwrap();
            expect.push((key.clone(), n as u64));
        }
        sh.commit().unwrap();
        drop(sh);
        let sh2 = ShardedHeap::open(&mgr, "props", LoadOptions::default()).unwrap();
        prop_assert_eq!(sh2.num_shards(), shards);
        for (key, v) in expect {
            let r = sh2.get_root(&key).expect("root survived");
            prop_assert_eq!(r.shard, sh2.shard_of(&key));
            prop_assert_eq!(sh2.field(r, 0), v);
        }
    }
}
