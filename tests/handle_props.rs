//! Property tests for the session-based heap API: shared `HeapHandle`s,
//! `txn` abort-on-panic, `ShardedHeap` commit→reload durability, and the
//! async commit pipeline's crash windows (seal→apply aborts, concurrent
//! `commit()` + `txn()` interleavings).

use espresso::heap::{HeapManager, LoadOptions, PjhConfig, PjhError, ShardedHeap};
use espresso::object::FieldDesc;
use proptest::prelude::*;

fn rec_fields() -> Vec<FieldDesc> {
    vec![FieldDesc::prim("a"), FieldDesc::prim("b")]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Two handles obtained for the same heap name are one live instance:
    /// any interleaving of writes through either is observed by both,
    /// field for field.
    #[test]
    fn two_handles_to_one_name_observe_each_others_writes(
        writes in proptest::collection::vec((any::<bool>(), 0usize..8, any::<u64>()), 1..40),
    ) {
        let mgr = HeapManager::temp().unwrap();
        let a = mgr.create("shared", 4 << 20, PjhConfig::small()).unwrap();
        let b = mgr.load("shared", LoadOptions::default()).unwrap();
        let objs = a.with_mut(|h| {
            let k = h.register_instance("Rec", rec_fields()).unwrap();
            (0..8).map(|_| h.alloc_instance(k).unwrap()).collect::<Vec<_>>()
        });
        let mut model = [0u64; 8];
        for (via_b, i, v) in writes {
            let writer = if via_b { &b } else { &a };
            writer.with_mut(|h| h.set_field(objs[i], 0, v));
            model[i] = v;
        }
        for (i, obj) in objs.iter().enumerate() {
            prop_assert_eq!(a.with(|h| h.field(*obj, 0)), model[i]);
            prop_assert_eq!(b.with(|h| h.field(*obj, 0)), model[i]);
        }
    }

    /// A transaction that panics mid-flight aborts: every logged store is
    /// rolled back to its pre-transaction value, and the heap stays
    /// usable afterwards.
    #[test]
    fn txn_panic_restores_pre_state(
        committed in proptest::collection::vec(any::<u64>(), 4..5),
        torn in proptest::collection::vec((0usize..4, any::<u64>()), 1..12),
    ) {
        let mgr = HeapManager::temp().unwrap();
        let handle = mgr.create("txn", 4 << 20, PjhConfig::small()).unwrap();
        let objs = handle.with_mut(|h| {
            let k = h.register_instance("Rec", rec_fields()).unwrap();
            (0..4).map(|_| h.alloc_instance(k).unwrap()).collect::<Vec<_>>()
        });
        // Committed baseline state.
        handle.txn(|t| {
            for (i, v) in committed.iter().enumerate() {
                t.set_field(objs[i], 0, *v);
            }
            Ok(())
        }).unwrap();
        // A transaction that applies `torn` stores, then panics.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Result<(), PjhError> = handle.txn(|t| {
                for (i, v) in &torn {
                    t.set_field(objs[*i], 0, *v);
                }
                panic!("power struggle");
            });
        }));
        prop_assert!(caught.is_err());
        for (i, v) in committed.iter().enumerate() {
            prop_assert_eq!(handle.with(|h| h.field(objs[i], 0)), *v,
                "panic must roll back to the committed value");
        }
        // Still usable: the next transaction commits normally.
        handle.txn(|t| { t.set_field(objs[0], 1, 77); Ok(()) }).unwrap();
        prop_assert_eq!(handle.with(|h| h.field(objs[0], 1)), 77);
    }

    /// ShardedHeap: roots written through the façade survive a
    /// commit→close→reload cycle on every shard, whatever the key mix.
    #[test]
    fn sharded_roots_survive_commit_reload_per_shard(
        key_ids in proptest::collection::vec(0u32..10_000, 1..24),
        shards in 1usize..5,
    ) {
        let keys: std::collections::BTreeSet<String> =
            key_ids.iter().map(|id| format!("user{id}")).collect();
        let mgr = HeapManager::temp().unwrap();
        let sh = ShardedHeap::create(&mgr, "props", shards, 4 << 20, PjhConfig::small()).unwrap();
        let k = sh.register_instance("Rec", rec_fields()).unwrap();
        let mut expect = Vec::new();
        for (n, key) in keys.iter().enumerate() {
            let r = sh.alloc_instance(key, &k).unwrap();
            sh.txn(key, |t| { t.set_field(r.r, 0, n as u64); Ok(()) }).unwrap();
            sh.set_root(key, r).unwrap();
            expect.push((key.clone(), n as u64));
        }
        sh.commit_sync().unwrap();
        drop(sh);
        let sh2 = ShardedHeap::open(&mgr, "props", LoadOptions::default()).unwrap();
        prop_assert_eq!(sh2.num_shards(), shards);
        for (key, v) in expect {
            let r = sh2.get_root(&key).expect("root survived");
            prop_assert_eq!(r.shard, sh2.shard_of(&key));
            prop_assert_eq!(sh2.field(r, 0), v);
        }
    }

    /// A pipeline that dies between seal and apply (pause + abort) loses
    /// exactly the sealed-but-unapplied epoch: reloading the image
    /// recovers the last *applied* epoch, bit for bit, whatever the torn
    /// epoch had mutated.
    #[test]
    fn pipeline_killed_between_seal_and_apply_recovers_last_applied_epoch(
        committed in proptest::collection::vec(any::<u64>(), 8..9),
        torn in proptest::collection::vec((0usize..8, any::<u64>()), 1..24),
    ) {
        let mgr = HeapManager::temp().unwrap();
        let handle = mgr.create("pipe", 4 << 20, PjhConfig::small()).unwrap();
        let objs = handle.with_mut(|h| {
            let k = h.register_instance("Rec", rec_fields()).unwrap();
            let objs: Vec<_> = (0..8).map(|_| h.alloc_instance(k).unwrap()).collect();
            for (i, o) in objs.iter().enumerate() {
                h.set_root(&format!("o{i}"), *o).unwrap();
            }
            objs
        });
        handle.txn(|t| {
            for (i, v) in committed.iter().enumerate() {
                t.set_field(objs[i], 0, *v);
            }
            Ok(())
        }).unwrap();
        handle.commit_sync().unwrap(); // the last applied epoch
        // The torn epoch: mutations sealed into a commit whose apply
        // never runs.
        handle.with_mut(|h| {
            for (i, v) in &torn {
                h.set_field(objs[*i], 0, *v);
                h.flush_field(objs[*i], 0);
            }
        });
        handle.set_flush_paused(true);
        let ticket = handle.commit().unwrap();
        prop_assert_eq!(handle.abort_pending_commits(), 1);
        prop_assert!(ticket.wait().is_err(), "the torn epoch must report failure");
        drop(handle);
        let reloaded = mgr.load("pipe", LoadOptions::default()).unwrap();
        reloaded.with(|h| {
            for (i, v) in committed.iter().enumerate() {
                let o = h.get_root(&format!("o{i}")).unwrap();
                assert_eq!(h.field(o, 0), *v, "object {i}: last applied epoch");
            }
        });
    }

    /// After an aborted apply, one ordinary commit re-captures every
    /// restored line: the next reload sees the full post-abort state —
    /// nothing from the discarded epoch is ever silently lost.
    #[test]
    fn commit_after_aborted_apply_heals_the_image(
        torn in proptest::collection::vec((0usize..8, any::<u64>()), 1..24),
    ) {
        let mgr = HeapManager::temp().unwrap();
        let handle = mgr.create("heal", 4 << 20, PjhConfig::small()).unwrap();
        let objs = handle.with_mut(|h| {
            let k = h.register_instance("Rec", rec_fields()).unwrap();
            let objs: Vec<_> = (0..8).map(|_| h.alloc_instance(k).unwrap()).collect();
            for (i, o) in objs.iter().enumerate() {
                h.set_root(&format!("o{i}"), *o).unwrap();
            }
            objs
        });
        handle.commit_sync().unwrap();
        let mut model = [0u64; 8];
        handle.with_mut(|h| {
            for (i, v) in &torn {
                h.set_field(objs[*i], 0, *v);
                h.flush_field(objs[*i], 0);
            }
        });
        for (i, v) in &torn {
            model[*i] = *v;
        }
        handle.set_flush_paused(true);
        let ticket = handle.commit().unwrap();
        handle.abort_pending_commits();
        prop_assert!(ticket.wait().is_err());
        // The retry: restored lines ride the next sealed epoch.
        handle.set_flush_paused(false);
        handle.commit_sync().unwrap();
        drop(handle);
        let reloaded = mgr.load("heal", LoadOptions::default()).unwrap();
        reloaded.with(|h| {
            for (i, want) in model.iter().enumerate() {
                let o = h.get_root(&format!("o{i}")).unwrap();
                assert_eq!(h.field(o, 0), *want, "object {i} healed");
            }
        });
    }

    /// Transactions racing asynchronous commit points stay atomic: a
    /// writer thread runs `txn`s (each sets both fields of an object to
    /// one value) while another thread seals commit epochs; after the
    /// final durability barrier and a reload, every object's field pair
    /// is consistent and equals the writer's final value.
    #[test]
    fn concurrent_commits_and_txns_stay_atomic_through_reload(
        writes in proptest::collection::vec((0usize..6, 1u64..u64::MAX), 4..40),
        commits in 1usize..6,
    ) {
        let mgr = HeapManager::temp().unwrap();
        let handle = mgr.create("race", 4 << 20, PjhConfig::small()).unwrap();
        let objs = handle.with_mut(|h| {
            let k = h.register_instance("Rec", rec_fields()).unwrap();
            let objs: Vec<_> = (0..6).map(|_| h.alloc_instance(k).unwrap()).collect();
            for (i, o) in objs.iter().enumerate() {
                h.set_root(&format!("o{i}"), *o).unwrap();
            }
            objs
        });
        handle.commit_sync().unwrap();
        let mut model = [0u64; 6];
        for (i, v) in &writes {
            model[*i] = *v;
        }
        let per_committer = writes.len().div_ceil(commits);
        std::thread::scope(|scope| {
            let writer_handle = handle.clone();
            let writer_objs = objs.clone();
            let writer_writes = writes.clone();
            scope.spawn(move || {
                for (i, v) in &writer_writes {
                    writer_handle
                        .txn(|t| {
                            t.set_field(writer_objs[*i], 0, *v);
                            t.set_field(writer_objs[*i], 1, *v);
                            Ok(())
                        })
                        .unwrap();
                }
            });
            let committer_handle = handle.clone();
            scope.spawn(move || {
                for _ in 0..per_committer {
                    // Async seal: the apply overlaps the writer's txns.
                    drop(committer_handle.commit().unwrap());
                    std::thread::yield_now();
                }
            });
        });
        handle.commit_sync().unwrap();
        drop(handle);
        let reloaded = mgr.load("race", LoadOptions::default()).unwrap();
        reloaded.with(|h| {
            for (i, want) in model.iter().enumerate() {
                let o = h.get_root(&format!("o{i}")).unwrap();
                let a = h.field(o, 0);
                let b = h.field(o, 1);
                assert_eq!(a, b, "object {i}: txn atomicity under racing commits");
                assert_eq!(a, *want, "object {i}: final barrier covers all txns");
            }
        });
    }
}
