//! Property suite for `espresso-index`: random operation sequences
//! against a DRAM `BTreeMap` model (all three key types), flush-granular
//! crash injection mid-split with a rebuild-from-heap-walk oracle, and
//! concurrent pinned readers scanning while a writer splits nodes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use espresso_core::{HeapManager, HeapTxn, LoadOptions, Pjh, PjhConfig, PjhError};
use espresso_index::{Index, Key};
use espresso_nvm::{NvmConfig, NvmDevice};
use espresso_object::{PObject, PRef, Schema};
use proptest::prelude::*;

struct Item;

impl PObject for Item {
    const CLASS_NAME: &'static str = "props.Item";
    fn schema() -> Schema {
        Schema::builder(Self::CLASS_NAME)
            .u64_field("k")
            .i64_field("ik")
            .str_field("sk")
            .u64_field("payload")
            .build()
    }
}

/// Key pool shared by the model tests. The `str` keys deliberately share
/// an 8-byte prefix so the encoded prefix word ties and the payload
/// string comparison decides the order.
fn pool_key(kind: u8, i: u64) -> Key {
    match kind {
        0 => Key::U64(i * 3),
        1 => Key::I64(i as i64 - 12),
        _ => Key::Str(format!("prefix-shared-{:03}", (i * 7) % 40)),
    }
}

/// Allocates an `Item` in `t`, stores `key` into its matching field plus
/// a unique `payload` id, and indexes it.
fn insert_item(
    t: &mut HeapTxn<'_>,
    idx: &Index<Item>,
    key: &Key,
    payload: u64,
) -> espresso_core::Result<PRef<Item>> {
    let class = t.register::<Item>()?;
    let obj = t.alloc::<Item>()?;
    match key {
        Key::U64(v) => t.set(obj, class.field::<u64>("k")?, *v),
        Key::I64(v) => t.set(obj, class.field::<i64>("ik")?, *v),
        Key::Str(s) => t.set_str(obj, class.str_field("sk")?, s)?,
    }
    t.set(obj, class.field::<u64>("payload")?, payload);
    idx.insert(t, key, obj)?;
    Ok(obj)
}

/// Drives a random op sequence over one key type against a
/// `BTreeMap<Key, Vec<payload>>` model, then checks point lookups, range
/// scans, the entry count, and the rebuild-from-heap-walk oracle.
fn run_model(kind: u8, field: &str, ops: Vec<(u8, u64, u64)>, window: (u64, u64)) {
    let mgr = HeapManager::temp().unwrap();
    let handle = mgr.create("model", 32 << 20, PjhConfig::small()).unwrap();
    let (class, idx) = handle
        .with_mut(|h| {
            let class = h.register::<Item>()?;
            let idx = Index::<Item>::create(h, "model.idx", field)?;
            Ok::<_, PjhError>((class, idx))
        })
        .unwrap();
    let fpay = class.field::<u64>("payload").unwrap();

    let mut model: BTreeMap<Key, Vec<u64>> = BTreeMap::new();
    let mut next_payload = 0u64;
    for (op, ki, _extra) in ops {
        let key = pool_key(kind, ki % 24);
        match op {
            // Committed insert.
            0 => {
                let payload = next_payload;
                next_payload += 1;
                handle
                    .txn(|t| insert_item(t, &idx, &key, payload).map(|_| ()))
                    .unwrap();
                model.entry(key.clone()).or_default().push(payload);
            }
            // Remove the entry with the smallest payload id under `key`.
            1 => {
                let victim = handle.with(|h| {
                    idx.get(h, &key)
                        .unwrap()
                        .map(|(_, o)| (h.get(o, fpay), o))
                        .min_by_key(|(p, _)| *p)
                });
                let entry = model.get_mut(&key);
                match (victim, entry) {
                    (Some((pay, obj)), Some(pays)) => {
                        let removed = handle.txn(|t| idx.remove(t, &key, obj)).unwrap();
                        assert!(removed, "tree lookup found an entry remove missed");
                        let min = *pays.iter().min().unwrap();
                        assert_eq!(pay, min, "tree min payload disagrees with model");
                        pays.retain(|&p| p != min);
                        if pays.is_empty() {
                            model.remove(&key);
                        }
                    }
                    (None, None) => {}
                    (tree, _) => panic!("presence mismatch under {key:?}: tree={tree:?}"),
                }
            }
            // Aborted insert: rolled back, model unchanged.
            _ => {
                let err = handle.txn(|t| {
                    insert_item(t, &idx, &key, u64::MAX)?;
                    Err::<(), _>(PjhError::SafetyViolation {
                        reason: "forced abort".into(),
                    })
                });
                assert!(err.is_err());
            }
        }
    }

    handle.with_mut(|h| {
        let total: usize = model.values().map(Vec::len).sum();
        assert_eq!(idx.len(h).unwrap() as usize, total);

        // Point lookups: payload multisets match per key.
        for i in 0..24 {
            let key = pool_key(kind, i);
            let mut got: Vec<u64> = idx
                .get(h, &key)
                .unwrap()
                .map(|(_, o)| h.get(o, fpay))
                .collect();
            got.sort_unstable();
            let mut want = model.get(&key).cloned().unwrap_or_default();
            want.sort_unstable();
            assert_eq!(got, want, "key {key:?}");
        }

        // Full scan is key-ordered and complete.
        let all: Vec<Key> = idx.range(h, ..).unwrap().map(|(k, _)| k).collect();
        assert_eq!(all.len(), total);
        assert!(all.windows(2).all(|w| w[0] <= w[1]), "scan out of order");

        // A half-open range window matches the model's.
        let (lo, hi) = (pool_key(kind, window.0 % 24), pool_key(kind, window.1 % 24));
        if lo < hi {
            let got = idx.range(h, lo.clone()..hi.clone()).unwrap().count();
            let want: usize = model.range(lo..hi).map(|(_, v)| v.len()).sum();
            assert_eq!(got, want, "range window");
        }

        // After collecting garbage, the tree equals an index rebuilt from
        // first principles by walking every live object.
        h.gc_full(&[]).unwrap();
        assert_eq!(idx.tree_entries(h).unwrap(), idx.heap_walk(h));
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn u64_index_matches_model(
        ops in proptest::collection::vec((0u8..3, any::<u64>(), any::<u64>()), 1..120),
        window in (any::<u64>(), any::<u64>()),
    ) {
        run_model(0, "k", ops, window);
    }

    #[test]
    fn i64_index_matches_model(
        ops in proptest::collection::vec((0u8..3, any::<u64>(), any::<u64>()), 1..120),
        window in (any::<u64>(), any::<u64>()),
    ) {
        run_model(1, "ik", ops, window);
    }

    #[test]
    fn str_index_matches_model(
        ops in proptest::collection::vec((0u8..3, any::<u64>(), any::<u64>()), 1..120),
        window in (any::<u64>(), any::<u64>()),
    ) {
        run_model(2, "sk", ops, window);
    }
}

#[test]
fn insert_get_range_smoke() {
    let mgr = HeapManager::temp().unwrap();
    let handle = mgr.create("props", 16 << 20, PjhConfig::small()).unwrap();
    let idx = handle
        .with_mut(|h| {
            h.register::<Item>()?;
            Index::<Item>::create(h, "items.by_k", "k")
        })
        .unwrap();

    let mut model: BTreeMap<u64, usize> = BTreeMap::new();
    for i in 0..200u64 {
        let k = (i * 37) % 64; // plenty of duplicates
        handle
            .txn(|t| insert_item(t, &idx, &Key::U64(k), i).map(|_| ()))
            .unwrap();
        *model.entry(k).or_default() += 1;
    }

    handle.with_mut(|h| {
        assert_eq!(idx.len(h).unwrap(), 200);
        for (&k, &n) in &model {
            assert_eq!(idx.get(h, &Key::U64(k)).unwrap().count(), n, "key {k}");
        }
        let in_range: usize = model.range(10..30).map(|(_, n)| n).sum();
        assert_eq!(
            idx.range(h, Key::U64(10)..Key::U64(30)).unwrap().count(),
            in_range
        );
        // Inclusive and excluded bounds agree with the model too.
        let incl: usize = model.range(10..=30).map(|(_, n)| n).sum();
        assert_eq!(
            idx.range(h, Key::U64(10)..=Key::U64(30)).unwrap().count(),
            incl
        );
        let excl: usize = model.range(11..30).map(|(_, n)| n).sum();
        assert_eq!(
            idx.range(
                h,
                (
                    std::ops::Bound::Excluded(Key::U64(10)),
                    std::ops::Bound::Excluded(Key::U64(30)),
                ),
            )
            .unwrap()
            .count(),
            excl
        );
        h.gc_full(&[]).unwrap();
        assert_eq!(idx.tree_entries(h).unwrap(), idx.heap_walk(h));
    });
}

#[test]
fn open_validates_persisted_metadata() {
    struct Other;
    impl PObject for Other {
        const CLASS_NAME: &'static str = "props.Other";
        fn schema() -> Schema {
            Schema::builder(Self::CLASS_NAME).u64_field("x").build()
        }
    }

    let mgr = HeapManager::temp().unwrap();
    let handle = mgr.create("meta", 8 << 20, PjhConfig::small()).unwrap();
    handle
        .with_mut(|h| {
            h.register::<Item>()?;
            Index::<Item>::create(h, "meta.idx", "k").map(|_| ())
        })
        .unwrap();
    handle.with_mut(|h| {
        // Wrong class: rejected.
        assert!(matches!(
            Index::<Other>::open(h, "meta.idx"),
            Err(PjhError::SchemaMismatch { .. })
        ));
        // Unknown name: rejected.
        assert!(Index::<Item>::open(h, "nope").is_err());
        // Right class: opens and sees the (empty) tree.
        let idx = Index::<Item>::open(h, "meta.idx").unwrap();
        assert_eq!(idx.len(h).unwrap(), 0);
        // Unindexable field type: rejected at create.
        assert!(matches!(
            Index::<Item>::create(h, "meta.bad", "nope"),
            Err(PjhError::SchemaMismatch { .. })
        ));
    });
}

// ---- crash injection ----

fn clone_device(src: &NvmDevice) -> NvmDevice {
    let image = src.snapshot_persisted();
    let dev = NvmDevice::new(NvmConfig::with_size(src.size()));
    dev.write_bytes(0, &image);
    dev.persist(0, image.len());
    dev
}

const SWEEP_INDEX: &str = "sweep.by_k";

fn sweep_load(dev: &NvmDevice) -> (Pjh, Index<Item>) {
    let (mut h, _) = Pjh::load(dev.clone(), LoadOptions::default()).unwrap();
    h.txn_recover().unwrap();
    h.register::<Item>().unwrap();
    let idx = Index::<Item>::open(&mut h, SWEEP_INDEX).unwrap();
    (h, idx)
}

fn sweep_insert(h: &mut Pjh, idx: &Index<Item>, j: u64) -> espresso_core::Result<()> {
    h.txn(|t| insert_item(t, idx, &Key::U64(j), j).map(|_| ()))
}

/// Power-fails an insert at **every** cache-line flush boundary — for a
/// plain leaf insert, the first leaf split, and the deepest split in the
/// probed window — and requires that the reloaded tree always equals the
/// rebuild-from-heap-walk oracle: the insert is fully there or fully
/// absent, never torn.
#[test]
fn crash_mid_split_recovers_to_oracle() {
    const N: usize = 220;

    // Base image: registered schemas plus an empty index.
    let base = NvmDevice::new(NvmConfig::with_size(16 << 20));
    {
        let mut h = Pjh::create(base.clone(), PjhConfig::small()).unwrap();
        h.register::<Item>().unwrap();
        Index::<Item>::create(&mut h, SWEEP_INDEX, "k").unwrap();
    }

    // Probe pass: flush count of every insert in the window. Splits show
    // up as flush spikes (each extra node built is extra flushed lines).
    let probe = clone_device(&base);
    let (mut ph, pidx) = sweep_load(&probe);
    let flushes: Vec<u64> = (0..N as u64)
        .map(|j| {
            let f0 = probe.stats().line_flushes;
            sweep_insert(&mut ph, &pidx, j).unwrap();
            probe.stats().line_flushes - f0
        })
        .collect();
    drop(ph);

    let min_f = *flushes.iter().min().unwrap();
    let plain = flushes.iter().rposition(|&f| f == min_f).unwrap();
    let first_split = flushes.iter().position(|&f| f > min_f).unwrap();
    let deepest = flushes
        .iter()
        .enumerate()
        .max_by_key(|(_, &f)| f)
        .unwrap()
        .0;
    let mut chosen = vec![plain, first_split, deepest];
    chosen.sort_unstable();
    chosen.dedup();
    assert!(
        flushes[deepest] > flushes[first_split] || deepest == first_split,
        "probe window never split twice: {flushes:?}"
    );

    // Main pass: replay the same inserts; at each chosen one, sweep a
    // crash after every flush boundary on a cloned device.
    let cur = clone_device(&base);
    let (mut ch, cidx) = sweep_load(&cur);
    // `j` is both the insert ordinal and the flush-count index; an
    // enumerate over `flushes` would obscure that they are the same.
    #[allow(clippy::needless_range_loop)]
    for j in 0..=*chosen.last().unwrap() {
        if chosen.contains(&j) {
            for at in 0..=flushes[j] {
                let sdev = clone_device(&cur);
                let (mut h2, idx2) = sweep_load(&sdev);
                sdev.schedule_crash_after_line_flushes(at);
                let _ = sweep_insert(&mut h2, &idx2, j as u64);
                sdev.recover();
                drop(h2);

                let (mut h3, idx3) = sweep_load(&sdev);
                let len = idx3.len(&h3).unwrap();
                assert!(
                    len == j as u64 || len == j as u64 + 1,
                    "crash after {at}/{} flushes of insert {j}: len {len}",
                    flushes[j]
                );
                h3.gc_full(&[]).unwrap();
                let tree = idx3.tree_entries(&h3).unwrap();
                assert_eq!(
                    tree,
                    idx3.heap_walk(&h3),
                    "crash after {at}/{} flushes of insert {j}: tree != oracle",
                    flushes[j]
                );
                let keys: Vec<u64> = tree
                    .iter()
                    .map(|(k, _)| match k {
                        Key::U64(v) => *v,
                        other => panic!("non-u64 key {other:?}"),
                    })
                    .collect();
                assert_eq!(
                    keys,
                    (0..len).collect::<Vec<u64>>(),
                    "crash after {at}/{} flushes of insert {j}",
                    flushes[j]
                );
            }
        }
        sweep_insert(&mut ch, &cidx, j as u64).unwrap();
    }
}

// ---- concurrency ----

/// Readers scan the index through pinned lock-free sessions while a
/// writer drives node splits. Every scan must observe a fully consistent
/// tree: keys in order, every entry's object field agreeing with the key
/// it was found under, and a length the tree actually had at some point.
#[test]
fn pinned_readers_never_observe_torn_nodes() {
    const WRITES: u64 = 1200;

    let mgr = HeapManager::temp().unwrap();
    let handle = mgr.create("rw", 64 << 20, PjhConfig::small()).unwrap();
    let (class, idx) = handle
        .with_mut(|h| {
            let class = h.register::<Item>()?;
            let idx = Index::<Item>::create(h, "rw.by_k", "k")?;
            Ok::<_, PjhError>((class, idx))
        })
        .unwrap();
    let fk = class.field::<u64>("k").unwrap();

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let handle = handle.clone();
            let idx = idx.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut scans = 0u64;
                let mut last_len = 0u64;
                while !done.load(Ordering::Acquire) {
                    let s = handle.read();
                    let mut n = 0u64;
                    let mut prev: Option<Key> = None;
                    for (k, obj) in idx.range(&s, ..).unwrap() {
                        assert!(prev.as_ref() <= Some(&k), "scan out of order");
                        let Key::U64(kv) = k else { panic!("bad key") };
                        assert_eq!(s.get(obj, fk), kv, "entry field disagrees with key");
                        prev = Some(Key::U64(kv));
                        n += 1;
                    }
                    // Each published tree only ever grows in this test.
                    assert!(n >= last_len, "scan shrank: {n} < {last_len}");
                    assert!(n <= WRITES, "scan overran the writer");
                    last_len = n;
                    scans += 1;
                }
                scans
            })
        })
        .collect();

    for i in 0..WRITES {
        handle
            .txn(|t| insert_item(t, &idx, &Key::U64((i * 13) % 4096), i).map(|_| ()))
            .unwrap();
    }
    done.store(true, Ordering::Release);
    for r in readers {
        let scans = r.join().unwrap();
        assert!(scans > 0, "reader never completed a scan");
    }

    handle.with_mut(|h| {
        assert_eq!(idx.len(h).unwrap(), WRITES);
        h.gc_full(&[]).unwrap();
        assert_eq!(idx.tree_entries(h).unwrap(), idx.heap_walk(h));
    });
}
