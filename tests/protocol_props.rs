//! Property tests for the espresso-server wire protocol.
//!
//! The codec's contract (see `crates/server/src/protocol.rs`): encoding
//! then decoding any legal frame is the identity; decoding is *total* —
//! truncations, trailing garbage, and arbitrary byte soup return
//! [`ProtocolError`]s, never panic, and oversized length prefixes are
//! refused before any payload is buffered. On a live connection,
//! pipelined requests are answered strictly in order.

use std::time::Duration;

use espresso_server::client::Client;
use espresso_server::protocol::{
    self, ProtocolError, Request, Response, Status, TxnOp, MAX_FRAME, MAX_SCAN,
};
use espresso_server::server::{Server, ServerConfig};
use proptest::prelude::*;

// ---- strategies ----

fn key_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..26, 1..24)
        .prop_map(|v| v.into_iter().map(|b| char::from(b'a' + b)).collect())
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..256)
}

/// A scan bound: a key, or the empty string ("unbounded").
fn bound_strategy() -> impl Strategy<Value = String> {
    prop_oneof![Just(String::new()), key_strategy()]
}

fn txn_op_strategy() -> BoxedStrategy<TxnOp> {
    prop_oneof![
        (key_strategy(), value_strategy()).prop_map(|(key, value)| TxnOp::Set { key, value }),
        key_strategy().prop_map(|key| TxnOp::Del { key }),
        (key_strategy(), any::<u8>(), any::<u64>()).prop_map(|(key, index, value)| TxnOp::FSet {
            key,
            index,
            value
        }),
    ]
    .boxed()
}

fn request_strategy() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Stats),
        Just(Request::Shutdown),
        any::<bool>().prop_map(|pause| Request::FlushCtl { pause }),
        key_strategy().prop_map(|key| Request::Get { key }),
        key_strategy().prop_map(|key| Request::Del { key }),
        (key_strategy(), value_strategy()).prop_map(|(key, value)| Request::Set { key, value }),
        (key_strategy(), any::<u8>()).prop_map(|(key, index)| Request::FGet { key, index }),
        (key_strategy(), any::<u8>(), any::<u64>()).prop_map(|(key, index, value)| Request::FSet {
            key,
            index,
            value
        }),
        proptest::collection::vec(txn_op_strategy(), 0..8).prop_map(|ops| Request::Txn { ops }),
        (
            any::<u16>(),
            bound_strategy(),
            bound_strategy(),
            any::<u32>().prop_map(|l| 1 + l % MAX_SCAN as u32),
        )
            .prop_map(|(shard, start, end, limit)| Request::Scan {
                shard,
                start,
                end,
                limit,
            }),
    ]
    .boxed()
}

fn status_strategy() -> BoxedStrategy<Status> {
    prop_oneof![
        Just(Status::Ok),
        Just(Status::NotFound),
        Just(Status::Busy),
        Just(Status::Err),
        Just(Status::BadRequest),
    ]
    .boxed()
}

// ---- codec properties ----

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// encode → frame-read → decode is the identity for every request.
    #[test]
    fn random_request_frames_roundtrip(req in request_strategy()) {
        let wire = protocol::encode_request(&req);
        let mut r = std::io::Cursor::new(wire);
        let body = protocol::read_frame(&mut r).unwrap().unwrap();
        prop_assert_eq!(protocol::decode_request(&body).unwrap(), req);
        // The frame is self-delimiting: nothing left on the stream.
        prop_assert!(protocol::read_frame(&mut r).unwrap().is_none());
    }

    /// Same for responses (any status, any payload).
    #[test]
    fn random_response_frames_roundtrip(
        status in status_strategy(),
        payload in value_strategy(),
    ) {
        let resp = Response { status, payload };
        let wire = protocol::encode_response(&resp);
        let mut r = std::io::Cursor::new(wire);
        let body = protocol::read_frame(&mut r).unwrap().unwrap();
        prop_assert_eq!(protocol::decode_response(&body).unwrap(), resp);
    }

    /// Every truncation of a valid frame body decodes to an error — and
    /// appending garbage to a complete body is rejected too (no request
    /// silently absorbs trailing bytes).
    #[test]
    fn truncated_and_extended_bodies_error_without_panic(
        req in request_strategy(),
        cut_seed in any::<u64>(),
        garbage in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let wire = protocol::encode_request(&req);
        let body = &wire[4..];
        let cut = (cut_seed % body.len() as u64) as usize;
        prop_assert!(protocol::decode_request(&body[..cut]).is_err());
        let mut extended = body.to_vec();
        extended.extend_from_slice(&garbage);
        prop_assert!(protocol::decode_request(&extended).is_err());
    }

    /// Arbitrary byte soup never panics the decoder; it either decodes
    /// (if it happens to spell a frame) or names a protocol error.
    #[test]
    fn garbage_bodies_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = protocol::decode_request(&bytes);
        let _ = protocol::decode_response(&bytes);
        let _ = protocol::decode_scan_items(&bytes);
    }

    /// The SCAN response payload codec roundtrips, and every truncation
    /// of a valid payload is an error.
    #[test]
    fn scan_item_payloads_roundtrip(
        truncated in any::<bool>(),
        items in proptest::collection::vec((key_strategy(), value_strategy()), 0..8),
        cut_seed in any::<u64>(),
    ) {
        let wire = protocol::encode_scan_items(truncated, &items);
        prop_assert_eq!(
            protocol::decode_scan_items(&wire).unwrap(),
            (truncated, items)
        );
        let cut = (cut_seed % wire.len() as u64) as usize;
        prop_assert!(protocol::decode_scan_items(&wire[..cut]).is_err());
    }

    /// Length prefixes beyond MAX_FRAME are refused before buffering; the
    /// reader never allocates for them.
    #[test]
    fn oversized_prefixes_are_refused(extra in any::<u32>()) {
        let len = MAX_FRAME.saturating_add(extra.max(1));
        let mut wire = len.to_be_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 8]);
        let mut r = std::io::Cursor::new(wire);
        prop_assert!(matches!(
            protocol::read_frame(&mut r),
            Err(ProtocolError::FrameTooLarge(_))
        ));
    }
}

// ---- live-connection ordering ----

/// Pipelined requests on one connection are answered strictly in request
/// order: a burst of SETs with distinct values, then a burst of GETs, all
/// written before any response is read — the k-th response must belong to
/// the k-th request.
#[test]
fn pipelined_requests_are_answered_in_order() {
    let handle = Server::start(ServerConfig {
        shards: 2,
        shard_bytes: 4 << 20,
        commit_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Several seeded rounds of randomized interleavings.
    for round in 0u64..4 {
        let mut seed = 0x9e37_79b9 ^ (round + 1);
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let n = 32;
        let mut sent = Vec::new();
        for i in 0..n {
            let key = format!("r{round}-k{}", next() % 8);
            if next() % 3 == 0 {
                sent.push(Request::Get { key });
            } else {
                let value = format!("v{round}-{i}").into_bytes();
                sent.push(Request::Set { key, value });
            }
        }
        for req in &sent {
            client.send(req).expect("pipelined send");
        }
        // Replay the sequence against a local model; ordering holds iff
        // every response matches the model at its position.
        let mut model: std::collections::HashMap<String, Vec<u8>> =
            std::collections::HashMap::new();
        for (i, req) in sent.iter().enumerate() {
            let resp = client.recv().expect("pipelined recv");
            match req {
                Request::Set { key, value } => {
                    assert_eq!(resp.status, Status::Ok, "SET #{i} not OK");
                    model.insert(key.clone(), value.clone());
                }
                Request::Get { key } => match model.get(key) {
                    Some(want) => {
                        assert_eq!(resp.status, Status::Ok, "GET #{i} not OK");
                        assert_eq!(&resp.payload, want, "GET #{i} out of order");
                    }
                    None => {
                        assert_eq!(resp.status, Status::NotFound, "GET #{i} of unset key");
                    }
                },
                _ => unreachable!(),
            }
        }
    }
    handle.stop_and_wait();
}
