//! Concurrency property tests for epoch-pinned lock-free read sessions.
//!
//! The contract under test: a `ReadSession` pins the reclamation epoch, so
//! every ref captured through it stays readable — at its original bytes —
//! across full compacting collections (relocated objects via their intact
//! source copies, dead objects via their deferred regions), while writers,
//! commits, and further collections proceed concurrently. Once the last
//! pin drops, the deferred regions return to the allocator.
//!
//! CI runs this suite twice: once inside tier-1 `cargo test -q`, and once
//! pinned to `RUST_TEST_THREADS=1` so the suite's own reader threads see
//! reproducible scheduler pressure (same rationale as `handle_props`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use espresso::heap::{HeapManager, PjhConfig, PjhError};
use espresso::object::FieldDesc;
use proptest::prelude::*;

fn rec_fields() -> Vec<FieldDesc> {
    vec![FieldDesc::prim("v")]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// N sessions pin before a full compaction. Afterwards, every ref
    /// captured before the cycle reads its original value through every
    /// session — live objects via their un-reclaimed source copies, dead
    /// ones via their deferred regions — while a writer allocates and a
    /// commit seals concurrently. Dropping the sessions releases the
    /// deferred space back to the allocator.
    #[test]
    fn sessions_pinned_across_gc_read_their_snapshot_refs(
        dead in proptest::collection::vec(any::<u64>(), 1..96),
        live in proptest::collection::vec(any::<u64>(), 1..16),
        readers in 1usize..6,
    ) {
        let mgr = HeapManager::temp().unwrap();
        let h = mgr.create("props", 1 << 20, PjhConfig::small()).unwrap();
        let (k, dead_refs, live_refs) = h.with_mut(|p| {
            let k = p.register_instance("Rec", rec_fields())?;
            let mut dead_refs = Vec::new();
            for v in &dead {
                let r = p.alloc_instance(k)?;
                p.set_field(r, 0, *v);
                p.flush_object(r);
                dead_refs.push(r);
            }
            let mut live_refs = Vec::new();
            for (i, v) in live.iter().enumerate() {
                let r = p.alloc_instance(k)?;
                p.set_field(r, 0, *v);
                p.flush_object(r);
                p.set_root(&format!("r{i}"), r)?;
                live_refs.push(r);
            }
            Ok::<_, PjhError>((k, dead_refs, live_refs))
        }).unwrap();
        let sessions: Vec<_> = (0..readers).map(|_| h.read()).collect();
        h.with_mut(|p| p.gc_full(&[])).unwrap();
        // Writers and commits proceed while the pins live.
        h.with_mut(|p| {
            let r = p.alloc_instance(k)?;
            p.set_field(r, 0, 1);
            p.flush_object(r);
            Ok::<_, PjhError>(())
        }).unwrap();
        h.commit_sync().unwrap();
        for s in &sessions {
            for (r, v) in dead_refs.iter().zip(&dead) {
                prop_assert_eq!(s.field(*r, 0), *v, "dead object's region was reclaimed under a pin");
            }
            for (r, v) in live_refs.iter().zip(&live) {
                prop_assert_eq!(s.field(*r, 0), *v, "relocated object's source was clobbered under a pin");
            }
        }
        drop(sessions);
        // Pins drained: allocation proceeds (deferred regions are back).
        h.with_mut(|p| p.alloc_instance(k)).unwrap();
    }

    /// Reader threads hammer refs captured before any collection while
    /// the main thread runs repeated relocating collections, allocations,
    /// and commits. Every single read must observe exactly the captured
    /// value — a torn read or a reclaimed/zeroed byte fails the assert on
    /// the reader thread and surfaces through its join.
    #[test]
    fn concurrent_readers_never_observe_reclaimed_bytes(
        values in proptest::collection::vec(1u64..u64::MAX, 8..32),
        readers in 2usize..5,
    ) {
        let mgr = HeapManager::temp().unwrap();
        let h = mgr.create("race", 1 << 20, PjhConfig::small()).unwrap();
        let (k, refs) = h.with_mut(|p| {
            let k = p.register_instance("Rec", rec_fields())?;
            let mut refs = Vec::new();
            for (i, v) in values.iter().enumerate() {
                let r = p.alloc_instance(k)?;
                p.set_field(r, 0, *v);
                p.flush_object(r);
                if i % 2 == 0 {
                    // Odd indices stay unrooted: garbage from the first
                    // cycle on, freed while the readers still hold refs.
                    p.set_root(&format!("r{i}"), r)?;
                }
                refs.push(r);
            }
            Ok::<_, PjhError>((k, refs))
        }).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let start = Arc::new(Barrier::new(readers + 1));
        let threads: Vec<_> = (0..readers)
            .map(|_| {
                let h = h.clone();
                let refs = refs.clone();
                let values = values.clone();
                let stop = Arc::clone(&stop);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    let session = h.read(); // pinned before the first cycle
                    start.wait();
                    while !stop.load(Ordering::Relaxed) {
                        for (r, v) in refs.iter().zip(&values) {
                            assert_eq!(session.field(*r, 0), *v, "torn or reclaimed read");
                        }
                    }
                })
            })
            .collect();
        start.wait();
        for _ in 0..3 {
            h.with_mut(|p| p.gc_full(&[])).unwrap();
            h.with_mut(|p| {
                let r = p.alloc_instance(k)?;
                p.flush_object(r);
                Ok::<_, PjhError>(())
            }).unwrap();
            drop(h.commit().unwrap()); // async seal races the readers too
        }
        stop.store(true, Ordering::Relaxed);
        for t in threads {
            t.join().expect("reader thread observed a torn or reclaimed value");
        }
        h.commit_sync().unwrap();
    }
}

/// A session opened before a class's first allocation can still reach
/// objects of that class: object data reads are live, so a writer that
/// registers a new class, allocates (appending the klass record to the
/// persisted segment *after* this session's replica snapshot), and
/// links the object from a pre-existing one hands the reader a class
/// word its frozen map has never seen. Resolution must fall back to
/// the persisted segment instead of panicking on a "dangling" word.
#[test]
fn stale_replica_resolves_klass_records_appended_after_pin() {
    let mgr = HeapManager::temp().unwrap();
    let h = mgr.create("stale", 1 << 20, PjhConfig::small()).unwrap();
    let anchor = h
        .with_mut(|p| {
            let a = p.register_instance("Anchor", vec![FieldDesc::reference("to")])?;
            let r = p.alloc_instance(a)?;
            p.flush_object(r);
            p.set_root("anchor", r)?;
            Ok::<_, PjhError>(r)
        })
        .unwrap();

    // Pin BEFORE "Fresh" exists anywhere — registry, segment, replica.
    let session = h.read();

    let fresh = h
        .with_mut(|p| {
            let k = p.register_instance("Fresh", rec_fields())?;
            let r = p.alloc_instance(k)?; // first use: appends the record
            p.set_field(r, 0, 41);
            p.flush_object(r);
            p.set_field_ref(anchor, 0, r)?;
            Ok::<_, PjhError>(r)
        })
        .unwrap();

    // The frozen replica trails the segment, but the live data read
    // reaches the new object; klass resolution must follow.
    assert_eq!(session.field_ref(anchor, 0), fresh);
    let k = session.klass_of(fresh);
    assert_eq!(k.name(), "Fresh");
    assert_eq!(k.fields().len(), 1);
    assert_eq!(session.field(fresh, 0), 41);
}
