//! Property-based tests for the typed persistence layer: schema
//! round-trips through create/load, typed accessors across `gc_full`
//! relocation and reload, schema-mismatch rejection on load, and
//! concurrent read-only sessions racing a writer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use espresso::heap::{
    FieldType, HeapManager, LoadOptions, PObject, PRef, PjhConfig, PjhError, Schema,
};
use proptest::prelude::*;

/// One randomly generated field declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FieldPick {
    U64,
    I64,
    Bool,
    F64,
    SelfRef,
    Str,
    Arr,
}

impl FieldPick {
    fn apply(self, b: espresso::heap::PClassBuilder, name: &str) -> espresso::heap::PClassBuilder {
        match self {
            FieldPick::U64 => b.u64_field(name),
            FieldPick::I64 => b.i64_field(name),
            FieldPick::Bool => b.bool_field(name),
            FieldPick::F64 => b.f64_field(name),
            FieldPick::SelfRef => b.ref_named(name, "Rand"),
            FieldPick::Str => b.str_field(name),
            FieldPick::Arr => b.array_field(name),
        }
    }
}

fn field_pick() -> impl Strategy<Value = FieldPick> {
    prop_oneof![
        Just(FieldPick::U64),
        Just(FieldPick::I64),
        Just(FieldPick::Bool),
        Just(FieldPick::F64),
        Just(FieldPick::SelfRef),
        Just(FieldPick::Str),
        Just(FieldPick::Arr),
    ]
}

fn build_schema(picks: &[FieldPick]) -> Schema {
    picks
        .iter()
        .enumerate()
        .fold(Schema::builder("Rand"), |b, (i, p)| {
            p.apply(b, &format!("f{i}"))
        })
        .build()
}

/// The statically-declared chain type used by the GC and concurrency
/// properties.
struct Link;
impl PObject for Link {
    const CLASS_NAME: &'static str = "Link";
    fn schema() -> Schema {
        Schema::builder("Link")
            .u64_field("a")
            .u64_field("b")
            .ref_field::<Link>("next")
            .str_field("tag")
            .build()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// A randomly declared schema registers, stores one typed value per
    /// field, survives commit + reload, revalidates, and reads back the
    /// same values through re-resolved field handles.
    #[test]
    fn random_schema_roundtrips_through_create_commit_load(
        picks in proptest::collection::vec(field_pick(), 1..12),
        seed in any::<u64>(),
    ) {
        let schema = build_schema(&picks);
        let mgr = HeapManager::temp().unwrap();
        let handle = mgr.create("p", 8 << 20, PjhConfig::small()).unwrap();
        let kid = handle.with_mut(|h| h.register_schema(&schema)).unwrap();
        let obj = handle.with_mut(|h| {
            let obj = h.alloc_instance(kid)?;
            for (i, pick) in picks.iter().enumerate() {
                match pick {
                    FieldPick::SelfRef | FieldPick::Arr => {} // stay null
                    FieldPick::Str => {
                        let s = h.alloc_string(&format!("s{}", seed.wrapping_add(i as u64)))?;
                        h.set_field_ref(obj, i, s)?;
                    }
                    _ => h.set_field(obj, i, seed.rotate_left(i as u32)),
                }
            }
            h.flush_object(obj);
            h.set_root("o", obj)?;
            Ok::<_, PjhError>(obj)
        }).unwrap();
        prop_assert!(!obj.is_null());
        handle.commit_sync().unwrap();
        drop(handle);

        let again = mgr.load("p", LoadOptions::default()).unwrap();
        // Revalidation after load: identical declaration passes...
        again.with_mut(|h| h.register_schema(&schema)).unwrap();
        again.with(|h| {
            let obj = h.get_root("o").unwrap();
            for (i, pick) in picks.iter().enumerate() {
                match pick {
                    FieldPick::SelfRef | FieldPick::Arr => {
                        assert!(h.field_ref(obj, i).is_null());
                    }
                    FieldPick::Str => {
                        let s = h.field_ref(obj, i);
                        assert_eq!(
                            h.read_string(s),
                            format!("s{}", seed.wrapping_add(i as u64))
                        );
                    }
                    _ => assert_eq!(h.field(obj, i), seed.rotate_left(i as u32)),
                }
            }
        });
        // ...and a drifted one (one field's declared type changed, word
        // shape preserved so only the fingerprint can catch it) fails.
        let mut drifted = picks.clone();
        for d in drifted.iter_mut() {
            *d = match *d {
                FieldPick::U64 => FieldPick::I64,
                FieldPick::I64 => FieldPick::F64,
                FieldPick::Bool => FieldPick::U64,
                FieldPick::F64 => FieldPick::Bool,
                FieldPick::SelfRef => FieldPick::Str,
                FieldPick::Str => FieldPick::Arr,
                FieldPick::Arr => FieldPick::SelfRef,
            };
        }
        drop(again);
        let drifted_schema = build_schema(&drifted);
        prop_assert!(drifted_schema.fingerprint() != schema.fingerprint());
        let fresh = mgr.load("p", LoadOptions::default()).unwrap();
        let err = fresh.with_mut(|h| h.register_schema(&drifted_schema)).unwrap_err();
        prop_assert!(
            matches!(err, PjhError::SchemaMismatch { .. }),
            "drifted schema must be rejected, got {err:?}"
        );
    }

    /// Typed accessors keep working across `gc_full` relocation and a
    /// crash/reload: the chain is re-entered through its typed root and
    /// every field (prim, ref, string) reads back exactly.
    #[test]
    fn typed_chain_survives_gc_full_and_reload(
        len in 1usize..24,
        garbage in 1usize..300,
        vals in proptest::collection::vec(any::<u64>(), 24..25),
    ) {
        let mgr = HeapManager::temp().unwrap();
        let handle = mgr.create("gc", 16 << 20, PjhConfig::small()).unwrap();
        let link = handle.register::<Link>().unwrap();
        let a = link.field::<u64>("a").unwrap();
        let b = link.field::<u64>("b").unwrap();
        let next = link.ref_field::<Link>("next").unwrap();
        let tag = link.str_field("tag").unwrap();
        handle.with_mut(|h| {
            let mut head: Option<PRef<Link>> = None;
            for (i, &val) in vals.iter().enumerate().take(len) {
                for _ in 0..(garbage / len).max(1) {
                    h.alloc::<Link>()?; // interleaved garbage
                }
                let n = h.alloc::<Link>()?;
                h.put(n, a, val);
                h.put(n, b, val.wrapping_mul(3));
                h.put_ref(n, next, head)?;
                h.put_str(n, tag, &format!("n{i}"))?;
                h.flush(n);
                head = Some(n);
            }
            h.set_root_typed("chain", head.unwrap())?;
            h.gc_full(&[])?;
            Ok::<_, PjhError>(())
        }).unwrap();
        // Walk after relocation, in the same session.
        let check = |h: &espresso::heap::Pjh| {
            let mut cur = h.root::<Link>("chain").unwrap();
            let mut i = len;
            while let Some(n) = cur {
                i -= 1;
                assert_eq!(h.get(n, a), vals[i]);
                assert_eq!(h.get(n, b), vals[i].wrapping_mul(3));
                assert_eq!(h.get_str(n, tag).as_deref(), Some(format!("n{i}").as_str()));
                cur = h.get_ref(n, next);
            }
            assert_eq!(i, 0, "walked the whole chain");
            h.verify_integrity().unwrap();
        };
        handle.with(check);
        handle.commit_sync().unwrap();
        drop(handle);
        // And again after a reload (schema revalidated first).
        let again = mgr.load("gc", LoadOptions::default()).unwrap();
        again.register::<Link>().unwrap();
        again.with(check);
    }
}

/// Concurrent read-only sessions race a writer: readers open lock-free
/// epoch-pinned sessions and do typed reads while the writer mutates
/// pairs inside transactions. Read sessions give memory safety, not
/// snapshot isolation — data reads are live, so a reader *may* see field
/// `a` from one transaction and `b` from the next (for an isolated view,
/// run the reads inside `handle.txn`). What must still hold, with one
/// writer incrementing the pair: every observed value is one the writer
/// actually wrote, `a` is monotone within a reader, and `b` never lags
/// more than one transaction behind the `a` read just before it.
#[test]
fn concurrent_read_sessions_race_a_writer() {
    let mgr = HeapManager::temp().unwrap();
    let handle = mgr.create("race", 8 << 20, PjhConfig::small()).unwrap();
    let link = handle.register::<Link>().unwrap();
    let a = link.field::<u64>("a").unwrap();
    let b = link.field::<u64>("b").unwrap();
    let obj = handle
        .txn(|t| {
            let n = t.alloc::<Link>()?;
            t.set(n, a, 0u64);
            t.set(n, b, 0u64);
            Ok(n)
        })
        .unwrap();
    handle.set_root_typed("obj", obj).unwrap();

    const ROUNDS: u64 = 300;
    // 7 is odd, so it has a multiplicative inverse mod 2^64: recover the
    // round that produced an observed `b` even under wrapping.
    const INV7: u64 = 0x6db6_db6d_b6db_6db7;
    let stop = AtomicBool::new(false);
    // Upper bound on any value the writer may have written, published
    // *before* each transaction runs (so it over-approximates, never
    // under-approximates, what a racing reader can see).
    let ceiling = AtomicU64::new(0);
    let reads = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
    let mut last = ROUNDS;
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for counter in &reads {
            let handle = handle.clone();
            let (stop, ceiling) = (&stop, &ceiling);
            readers.push(scope.spawn(move || {
                let mut prev_a = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // A lock-free read session: pins an epoch, never
                    // touches the writer lock, reads data live.
                    let h = handle.read();
                    let o = h.root::<Link>("obj").unwrap().unwrap();
                    let x = h.get(o, a);
                    let y = h.get(o, b);
                    let bound = ceiling.load(Ordering::SeqCst);
                    assert!(x <= bound, "a={x} was never written (bound {bound})");
                    let k = y.wrapping_mul(INV7);
                    assert!(
                        k <= bound,
                        "b={y} (round {k}) was never written (bound {bound})"
                    );
                    // Writes go a-then-b: by the time a=x is visible, b
                    // is at least round x-1, and only moves forward.
                    assert!(
                        k + 1 >= x,
                        "b={y} (round {k}) lags more than one txn behind a={x}"
                    );
                    assert!(x >= prev_a, "a went backwards: {prev_a} -> {x}");
                    prev_a = x;
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        // At least ROUNDS transactions, then keep mutating until every
        // reader has demonstrably raced the writer (bounded, so a wedged
        // scheduler fails the test instead of hanging it).
        let mut i = 0u64;
        loop {
            i += 1;
            ceiling.store(i, Ordering::SeqCst);
            handle
                .txn(|t| {
                    t.set(obj, a, i);
                    t.set(obj, b, i.wrapping_mul(7));
                    Ok(())
                })
                .unwrap();
            let all_raced = reads.iter().all(|c| c.load(Ordering::Relaxed) > 0);
            if i >= ROUNDS && all_raced {
                break;
            }
            assert!(i < 2_000_000, "readers never got scheduled");
        }
        last = i;
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    });
    assert!(reads.iter().all(|c| c.load(Ordering::Relaxed) > 0));
    // Final state is the last written pair.
    let h = handle.read();
    assert_eq!(h.get(obj, a), last);
    assert_eq!(h.get(obj, b), last.wrapping_mul(7));
}

/// The fingerprint distinguishes every declared field type from every
/// other (pairwise), so no single-type drift can slip through.
#[test]
fn fingerprints_are_pairwise_distinct_across_field_types() {
    let types = [
        FieldPick::U64,
        FieldPick::I64,
        FieldPick::Bool,
        FieldPick::F64,
        FieldPick::SelfRef,
        FieldPick::Str,
        FieldPick::Arr,
    ];
    let fps: Vec<u64> = types
        .iter()
        .map(|p| build_schema(&[*p]).fingerprint())
        .collect();
    for i in 0..fps.len() {
        for j in 0..i {
            assert_ne!(fps[i], fps[j], "{:?} vs {:?}", types[i], types[j]);
        }
    }
    // And ref targets are part of the digest.
    let r1 = Schema::builder("Rand").ref_named("f0", "A").build();
    let r2 = Schema::builder("Rand").ref_named("f0", "B").build();
    assert_ne!(r1.fingerprint(), r2.fingerprint());
    assert!(matches!(r1.field("f0"), Some((0, FieldType::Ref { .. }))));
}
