//! Property tests for the workload harness's determinism guarantees:
//! recording is a pure function of the scenario, traces round-trip
//! through their binary encoding, replays are reproducible on fresh
//! heaps, and independent backends converge to one state digest.

use espresso_workload::replay::replay;
use espresso_workload::trace::record;
use espresso_workload::{make_backend, BackendKind, OpMix, Scenario, Skew, Trace};
use proptest::prelude::*;

/// A small but shape-diverse scenario from raw proptest inputs. The op
/// mix is derived from six cut points (splitmix64 over `cuts_seed`) so
/// it always sums to 100 — scans included — and every generated
/// scenario passes the config validator by construction.
fn scenario_from(
    seed: u64,
    key_space: u32,
    ops: u64,
    cuts_seed: u64,
    zipf: bool,
    commit_every: u64,
) -> Scenario {
    let mut state = cuts_seed;
    let mut c = [0u32; 6].map(|_| {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) % 101) as u32
    });
    c.sort_unstable();
    let mix = OpMix {
        get: c[0],
        set: c[1] - c[0],
        del: c[2] - c[1],
        fget: c[3] - c[2],
        fset: c[4] - c[3],
        txn: c[5] - c[4],
        scan: 100 - c[5],
    };
    Scenario {
        name: "prop".into(),
        key_space,
        ops,
        seed,
        value_len: (1, 20),
        mix,
        skew: if zipf {
            Skew::Zipfian { theta: 0.9 }
        } else {
            Skew::Uniform
        },
        commit_every,
        faults: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Same scenario, same bytes: `record` has no hidden inputs (clock,
    /// global RNG, map iteration order), so two recordings are
    /// byte-identical — and the encoding round-trips losslessly.
    #[test]
    fn same_scenario_records_identical_trace_bytes(
        seed in any::<u64>(),
        key_space in 1u32..40,
        ops in 1u64..300,
        cuts in any::<u64>(),
        zipf in any::<bool>(),
        commit_every in 0u64..50,
    ) {
        let s = scenario_from(seed, key_space, ops, cuts, zipf, commit_every);
        let a = record(&s).encode();
        let b = record(&s).encode();
        prop_assert_eq!(&a, &b);
        let decoded = Trace::decode(&a).unwrap();
        prop_assert_eq!(decoded.encode(), a);
    }

    /// Replaying one trace on two fresh heaps of the same kind lands on
    /// the same digest: replay has no nondeterminism of its own.
    #[test]
    fn replay_twice_from_fresh_heaps_is_identical(
        seed in any::<u64>(),
        cuts in any::<u64>(),
    ) {
        let s = scenario_from(seed, 10, 80, cuts, false, 25);
        let trace = record(&s);
        let mut a = make_backend(BackendKind::Raw, trace.key_space).unwrap();
        let mut b = make_backend(BackendKind::Raw, trace.key_space).unwrap();
        let ra = replay(a.as_mut(), &trace, None).unwrap();
        let rb = replay(b.as_mut(), &trace, None).unwrap();
        prop_assert_eq!(ra.digest, rb.digest);
    }

    /// The embedded backends are operationally equivalent: raw words,
    /// typed sessions, and the sharded heap converge to one digest on
    /// any generated scenario (txns included — they are single-key by
    /// construction, so no backend hits a cross-shard rejection).
    #[test]
    fn raw_typed_sharded_converge(
        seed in any::<u64>(),
        key_space in 1u32..24,
        cuts in any::<u64>(),
        zipf in any::<bool>(),
    ) {
        let s = scenario_from(seed, key_space, 100, cuts, zipf, 40);
        let trace = record(&s);
        let mut digests = Vec::new();
        for kind in [BackendKind::Raw, BackendKind::Typed, BackendKind::Sharded] {
            let mut backend = make_backend(kind, trace.key_space).unwrap();
            let report = replay(backend.as_mut(), &trace, None).unwrap();
            digests.push((kind, report.digest));
        }
        prop_assert_eq!(digests[0].1, digests[1].1,
            "raw vs typed diverged: {:x?}", digests);
        prop_assert_eq!(digests[1].1, digests[2].1,
            "typed vs sharded diverged: {:x?}", digests);
    }
}

/// minidb speaks the same entry model through a relational table; one
/// deterministic case keeps it in the convergence net without paying
/// its per-op WAL cost across every proptest case.
#[test]
fn minidb_converges_with_raw() {
    let s = scenario_from(0xC0FFEE, 16, 150, 0xCAFE_F00D, true, 50);
    let trace = record(&s);
    let mut raw = make_backend(BackendKind::Raw, trace.key_space).unwrap();
    let mut db = make_backend(BackendKind::Minidb, trace.key_space).unwrap();
    let r = replay(raw.as_mut(), &trace, None).unwrap();
    let d = replay(db.as_mut(), &trace, None).unwrap();
    assert_eq!(r.digest, d.digest);
}
