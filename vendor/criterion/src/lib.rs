//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace's benches use: benchmark groups with
//! `sample_size`/`measurement_time`/`warm_up_time`, `bench_function` with a
//! `Bencher::iter` timing loop, and the `criterion_group!`/`criterion_main!`
//! glue. Reports mean/min/max wall-clock time per iteration to stdout. No
//! statistics engine, plots, or baselines — set `CRITERION_MEASUREMENT_MS`
//! to cap measurement time (useful in CI).

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

fn measurement_cap() -> Option<Duration> {
    std::env::var("CRITERION_MEASUREMENT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmarking group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(
            &id.into(),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }
}

/// A named group of related benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(
            &id,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark(
    id: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let cap = measurement_cap();
    let measurement = cap.map_or(measurement_time, |c| measurement_time.min(c));
    let warm_up = cap.map_or(warm_up_time, |c| warm_up_time.min(c));
    let mut bencher = Bencher {
        budget: warm_up,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher); // warm-up pass, discarded

    let per_sample = measurement / sample_size.max(1) as u32;
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            budget: per_sample,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.iters > 0 {
            samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
    }
    if samples.is_empty() {
        println!("{id:<48} no samples");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{id:<48} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly until the sample's time budget is spent,
    /// recording total elapsed time and iteration count.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        std::env::set_var("CRITERION_MEASUREMENT_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut ran = 0u64;
        g.sample_size(2).measurement_time(Duration::from_millis(10));
        g.bench_function("f", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }
}
