//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Wraps the std primitives with `parking_lot`'s non-poisoning API: `lock()`,
//! `read()` and `write()` return guards directly instead of `Result`s. A
//! poisoned std lock is simply re-entered — panicking threads in this
//! workspace never leave protected state torn, matching parking_lot's
//! semantics closely enough for tests and benches.

use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion primitive with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
