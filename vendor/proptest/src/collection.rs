//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "vec strategy size range is empty");
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_respects_range() {
        let mut rng = TestRng::new(9);
        let s = vec(0u8..5, 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
