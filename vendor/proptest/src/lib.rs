//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace's property suites use: the
//! `proptest!` macro with `#![proptest_config(..)]`, weighted `prop_oneof!`,
//! `prop_assert*!`, the [`strategy::Strategy`] trait with `prop_map`, integer-range and
//! tuple strategies, `any::<T>()`, `Just`, and `collection::vec`.
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** Failures report the full generated input instead.
//! * **Deterministic seeding.** The PRNG seed derives from the test's module
//!   path, name and case index, so every run generates the same cases. Set
//!   `PROPTEST_RNG_SEED` to explore a different deterministic universe.
//! * `PROPTEST_CASES` acts as a *cap* on each suite's configured case count,
//!   so CI can bound runtime without editing test files (see
//!   `/proptest.toml`).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Expands each `#[test] fn name(arg in strategy, ...) { body }` item into a
/// plain test that generates `cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let cases = config.effective_cases();
            let test_path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..cases {
                let mut rng = $crate::test_runner::rng_for(test_path, case);
                $( let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng); )+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })();
                if let Err(err) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n    inputs: {}",
                        case + 1, cases, err, inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Weighted (or unweighted) choice between strategies producing one type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
    ( $( $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` at {}:{}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` at {}:{}: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                format!($($fmt)+), left, right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` at {}:{}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                left
            )));
        }
    }};
}
