//! The [`Strategy`] trait and the combinators the workspace's suites use.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type. Unlike real proptest there is
/// no value tree / shrinking: `generate` produces the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation, used to erase strategy types inside
/// [`BoxedStrategy`] and [`Union`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T`, mirroring `proptest::prelude::any`.
pub struct Any<T>(PhantomData<fn() -> T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "strategy range is empty: {:?}", self);
                let span = (hi - lo) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

/// Weighted choice between type-erased strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs at least one positive weight"
        );
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (weight, strategy) in &self.arms {
            if pick < *weight as u64 {
                return strategy.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick exceeded total weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3i64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let u = (0usize..2).generate(&mut rng);
            assert!(u < 2);
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::new(2);
        let s = (0u8..10, 0u8..10).prop_map(|(a, b)| (a as u16) + (b as u16));
        for _ in 0..100 {
            assert!(s.generate(&mut rng) < 20);
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::new(3);
        let s = Union::new(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 700, "expected ~900 trues, got {trues}");
    }
}
