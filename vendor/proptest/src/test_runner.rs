//! Configuration, error type and deterministic PRNG for the shim.

use std::fmt;

/// Per-suite configuration; only `cases` is consulted by the shim, the other
/// fields exist so `ProptestConfig { cases: N, ..ProptestConfig::default() }`
/// literals from real-proptest code keep compiling.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; the shim never rejects inputs.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 0,
        }
    }
}

impl ProptestConfig {
    /// The configured case count, capped by `PROPTEST_CASES` when set so CI
    /// can bound suite runtime globally (see `/proptest.toml`).
    pub fn effective_cases(&self) -> u32 {
        let capped = match env_u64("PROPTEST_CASES") {
            Some(cap) => self.cases.min(cap as u32),
            None => self.cases,
        };
        capped.max(1)
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// A failed property assertion, carried out of the test body by
/// `prop_assert*!` and reported with the generated inputs.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64 generator feeding every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// The deterministic per-case generator: seeded from the fully qualified
/// test name, the case index, and the optional `PROPTEST_RNG_SEED` override.
pub fn rng_for(test_path: &str, case: u32) -> TestRng {
    let mut seed = env_u64("PROPTEST_RNG_SEED").unwrap_or(0xcbf2_9ce4_8422_2325);
    for b in test_path.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::new(seed.wrapping_add(0x1000_0000_0000_0001u64.wrapping_mul(case as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_test_and_case() {
        let a: Vec<u64> = (0..4).map(|c| rng_for("m::t", c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| rng_for("m::t", c).next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(
            rng_for("m::t", 0).next_u64(),
            rng_for("m::other", 0).next_u64()
        );
    }

    #[test]
    fn effective_cases_is_at_least_one() {
        let cfg = ProptestConfig {
            cases: 0,
            ..ProptestConfig::default()
        };
        assert_eq!(cfg.effective_cases(), 1);
    }
}
