//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::gen_range` over integer ranges — the subset this workspace's tests
//! use. The generator is SplitMix64: statistically fine for test workloads
//! and fully deterministic for a given seed.

use std::ops::Range;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a `Range<T>`, mirroring the `rand::Rng` surface the
/// workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_in(range, self.next_u64())
    }
}

/// Integer types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    fn sample_in(range: Range<Self>, raw: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(range: Range<Self>, raw: u64) -> Self {
                let lo = range.start as i128;
                let hi = range.end as i128;
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi - lo) as u128;
                // Modulo bias is irrelevant at test-workload spans.
                (lo + (raw as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = super::rngs::StdRng::seed_from_u64(7);
        let mut b = super::rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = super::rngs::StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u: usize = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn covers_small_ranges() {
        let mut rng = super::rngs::StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
